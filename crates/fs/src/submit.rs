//! Submission-queue backend: real files with decoupled completion.
//!
//! `SubmitFs` is the io_uring-style counterpart of [`crate::LocalFs`]:
//! a write is *submitted* (queued, buffer ownership transferred) and
//! *completed* later by a pool of completion threads, so the caller —
//! Panda's pinned disk stage — can issue the next subchunk while the
//! previous one is still on its way to the platter. The moving parts:
//!
//! * **Per-file submission queue.** Each handle owns a FIFO of pending
//!   writes. A file is drained by at most one completion thread at a
//!   time, so per-file write order (and therefore the engine's
//!   byte-identity guarantee) is preserved even with many threads; the
//!   offsets of a Panda schedule are disjoint anyway, so completion
//!   order never changes the final bytes.
//! * **Completion-thread pool.** A configurable number of threads (the
//!   paper-era "one thread per spindle" simulation) pop files with
//!   work and run their queues with positional `pwrite`.
//! * **Positional I/O everywhere.** `pread`/`pwrite` via
//!   `std::os::unix::fs::FileExt`; no seeks, and `pwrite` past EOF
//!   zero-fills, which keeps sparse semantics identical to MemFs.
//! * **Preallocation.** [`crate::FileHandle::preallocate`] maps to
//!   `ftruncate`-up (`File::set_len`), so a collective whose per-file
//!   extent is known from the schedule grows each file exactly once.
//!
//! `sync` is a barrier: it waits for every submitted write on the
//! handle to complete, surfaces any deferred error, then `fdatasync`s.

use std::collections::VecDeque;
use std::fs;
use std::os::unix::fs::FileExt;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use panda_obs::{Event, Recorder};

use crate::error::FsError;
use crate::obs::FsObs;
use crate::stats::{IoStats, SeqTracker};
use crate::traits::{FileHandle, FileSystem};

/// A real-file backend whose writes are queued and completed
/// asynchronously by a pool of completion threads. See the module docs
/// for the design; the public surface is the ordinary
/// [`FileSystem`]/[`FileHandle`] pair, so every Panda call site works
/// unchanged.
pub struct SubmitFs {
    root: PathBuf,
    obs: Arc<FsObs>,
    pool: Arc<SubmitPool>,
}

impl std::fmt::Debug for SubmitFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitFs")
            .field("root", &self.root)
            .finish()
    }
}

impl SubmitFs {
    /// Create a backend rooted at `root` with `completion_threads`
    /// completion threads, creating the directory if needed.
    ///
    /// `completion_threads` must be at least 1 (deployments should
    /// validate the knob up front — `panda_core` raises a typed
    /// `ConfigIssue::ZeroCompletionThreads` for it).
    pub fn new(root: impl Into<PathBuf>, completion_threads: usize) -> Result<Self, FsError> {
        Self::with_recorder(root, completion_threads, panda_obs::null_recorder(), 0)
    }

    /// As [`SubmitFs::new`], reporting every access to `recorder` as
    /// node `node`.
    pub fn with_recorder(
        root: impl Into<PathBuf>,
        completion_threads: usize,
        recorder: Arc<dyn Recorder>,
        node: u32,
    ) -> Result<Self, FsError> {
        if completion_threads == 0 {
            return Err(FsError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "SubmitFs needs at least one completion thread",
            )));
        }
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SubmitFs {
            root,
            obs: Arc::new(FsObs::with_recorder(recorder, node)),
            pool: Arc::new(SubmitPool::spawn(completion_threads)),
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> Result<PathBuf, FsError> {
        let rel = Path::new(path);
        if rel.is_absolute()
            || rel
                .components()
                .any(|c| matches!(c, Component::ParentDir | Component::RootDir))
        {
            return Err(FsError::InvalidPath {
                path: path.to_string(),
            });
        }
        Ok(self.root.join(rel))
    }

    fn handle(&self, path: &str, file: fs::File, len: u64) -> Box<dyn FileHandle> {
        Box::new(SubmitHandle {
            state: Arc::new(FileState {
                file,
                name: path.to_string(),
                obs: Arc::clone(&self.obs),
                queue: Mutex::new(SubQueue {
                    ops: VecDeque::new(),
                    active: false,
                }),
                done: Mutex::new(Completions {
                    pending: 0,
                    bufs: Vec::new(),
                    error: None,
                }),
                cv: Condvar::new(),
                len: AtomicU64::new(len),
            }),
            pool: Arc::clone(&self.pool),
            tracker: SeqTracker::default(),
        })
    }
}

impl Drop for SubmitFs {
    fn drop(&mut self) {
        self.pool.shutdown();
    }
}

impl FileSystem for SubmitFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(full)?;
        Ok(self.handle(path, file, 0))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let full = self.resolve(path)?;
        if !full.is_file() {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        let file = fs::OpenOptions::new().read(true).write(true).open(full)?;
        let len = file.metadata()?.len();
        Ok(self.handle(path, file, len))
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        let full = self.resolve(path)?;
        if !full.is_file() {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        fs::remove_file(full)?;
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let rel = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix}/{name}")
                };
                let p = entry.path();
                if p.is_dir() {
                    walk(&p, &rel, out);
                } else {
                    out.push(rel);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out.sort();
        out
    }

    fn stats(&self) -> Arc<IoStats> {
        self.obs.stats()
    }

    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        self.obs.set_recorder(recorder, node);
    }
}

/// The completion-thread pool. The sole `mpsc::Sender` lives here:
/// dropping it (in [`SubmitPool::shutdown`]) lets the threads drain the
/// remaining dispatched files and exit, so shutdown never loses a
/// submitted write.
struct SubmitPool {
    tx: Mutex<Option<mpsc::Sender<Arc<FileState>>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl SubmitPool {
    fn spawn(threads: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Arc<FileState>>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("panda-submitfs-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the recv
                        // itself; draining runs unlocked so the other
                        // completion threads keep popping files.
                        let next = rx.lock().expect("submit queue poisoned").recv();
                        match next {
                            Ok(state) => state.drain_queue(),
                            Err(_) => return,
                        }
                    })
                    .expect("spawn completion thread")
            })
            .collect();
        SubmitPool {
            tx: Mutex::new(Some(tx)),
            threads: Mutex::new(handles),
        }
    }

    /// Hand a file with queued work to the pool. Returns `false` after
    /// shutdown — the caller then drains inline.
    fn dispatch(&self, state: Arc<FileState>) -> bool {
        match &*self.tx.lock().expect("submit pool poisoned") {
            Some(tx) => tx.send(state).is_ok(),
            None => false,
        }
    }

    /// Close the queue and join every completion thread. Files already
    /// dispatched are drained first (an `mpsc` receiver returns
    /// buffered messages before reporting disconnection).
    fn shutdown(&self) {
        drop(self.tx.lock().expect("submit pool poisoned").take());
        for t in self.threads.lock().expect("submit pool poisoned").drain(..) {
            let _ = t.join();
        }
    }
}

/// One queued write.
struct SubmitOp {
    offset: u64,
    buf: Vec<u8>,
    /// Sequentiality, classified at submission time (submission order
    /// is schedule order; completion order is not).
    sequential: bool,
    /// Submission timestamp when timing is on, for the
    /// submit→completion latency event.
    queued: Option<Instant>,
}

/// The submission side of one file.
struct SubQueue {
    ops: VecDeque<SubmitOp>,
    /// True while a completion thread owns the drain of this file —
    /// the per-file FIFO guarantee.
    active: bool,
}

/// The completion side of one file.
struct Completions {
    /// Submitted writes not yet completed.
    pending: usize,
    /// Buffers of completed writes, awaiting `drain_completions`.
    bufs: Vec<Vec<u8>>,
    /// First deferred write error, surfaced once by the next
    /// `drain_completions`/`sync`/`write_at`.
    error: Option<FsError>,
}

/// Everything the completion threads share with a handle.
struct FileState {
    file: fs::File,
    name: String,
    obs: Arc<FsObs>,
    queue: Mutex<SubQueue>,
    done: Mutex<Completions>,
    cv: Condvar,
    /// Logical file length: grows at *submission* time so `len()` and
    /// read bounds see every queued write immediately.
    len: AtomicU64,
}

impl FileState {
    /// Run this file's submission queue to empty. Called by exactly one
    /// thread at a time (guarded by [`SubQueue::active`]).
    fn drain_queue(self: Arc<Self>) {
        loop {
            let op = {
                let mut q = self.queue.lock().expect("submit queue poisoned");
                match q.ops.pop_front() {
                    Some(op) => op,
                    None => {
                        q.active = false;
                        return;
                    }
                }
            };
            self.perform(op);
        }
    }

    /// Complete one write: positional `pwrite`, events, bookkeeping.
    fn perform(&self, op: SubmitOp) {
        let start = self.obs.timed().then(Instant::now);
        let res = self.file.write_all_at(&op.buf, op.offset);
        if res.is_ok() {
            self.obs.emit(&Event::FsWrite {
                file: &self.name,
                offset: op.offset,
                bytes: op.buf.len() as u64,
                sequential: op.sequential,
                dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
            });
            if let Some(q) = op.queued {
                self.obs.emit(&Event::FsComplete {
                    file: &self.name,
                    offset: op.offset,
                    bytes: op.buf.len() as u64,
                    queued: q.elapsed(),
                });
            }
        }
        let mut d = self.done.lock().expect("completion state poisoned");
        if let Err(e) = res {
            if d.error.is_none() {
                d.error = Some(e.into());
            }
        }
        d.bufs.push(op.buf);
        d.pending -= 1;
        self.cv.notify_all();
    }
}

/// Handle over one open file of a [`SubmitFs`].
struct SubmitHandle {
    state: Arc<FileState>,
    pool: Arc<SubmitPool>,
    tracker: SeqTracker,
}

impl SubmitHandle {
    /// Wait for every submitted write on this handle to complete and
    /// surface any deferred error.
    fn wait_idle(&self) -> Result<(), FsError> {
        let mut d = self.state.done.lock().expect("completion state poisoned");
        while d.pending > 0 {
            d = self.state.cv.wait(d).expect("completion state poisoned");
        }
        match d.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl FileHandle for SubmitHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        // Let queued writes land first so mixed submit/direct use keeps
        // per-file order; with nothing pending this is one lock.
        self.wait_idle()?;
        let sequential = self.tracker.classify(offset, data.len());
        let start = self.state.obs.timed().then(Instant::now);
        self.state.file.write_all_at(data, offset)?;
        self.state
            .len
            .fetch_max(offset + data.len() as u64, Ordering::Relaxed);
        self.state.obs.emit(&Event::FsWrite {
            file: &self.state.name,
            offset,
            bytes: data.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        // Read-your-writes: queued writes must land before we read.
        self.wait_idle()?;
        let sequential = self.tracker.classify(offset, buf.len());
        let start = self.state.obs.timed().then(Instant::now);
        let file_len = self.state.len.load(Ordering::Relaxed);
        if offset + buf.len() as u64 > file_len {
            return Err(FsError::ReadPastEnd {
                offset,
                len: buf.len(),
                file_len,
            });
        }
        self.state.file.read_exact_at(buf, offset)?;
        self.state.obs.emit(&Event::FsRead {
            file: &self.state.name,
            offset,
            bytes: buf.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn len(&self) -> u64 {
        self.state.len.load(Ordering::Relaxed)
    }

    fn sync(&mut self) -> Result<(), FsError> {
        // Completion barrier first: fsync covers every submitted write.
        self.wait_idle()?;
        let start = self.state.obs.timed().then(Instant::now);
        self.state.file.sync_data()?;
        self.state.obs.emit(&Event::FsSync {
            file: &self.state.name,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn submit_write(&mut self, offset: u64, data: Vec<u8>) -> Result<Option<Vec<u8>>, FsError> {
        let sequential = self.tracker.classify(offset, data.len());
        self.state
            .len
            .fetch_max(offset + data.len() as u64, Ordering::Relaxed);
        self.state.obs.emit(&Event::FsSubmit {
            file: &self.state.name,
            offset,
            bytes: data.len() as u64,
        });
        let queued = self.state.obs.timed().then(Instant::now);
        {
            let mut d = self.state.done.lock().expect("completion state poisoned");
            if let Some(e) = d.error.take() {
                // A previous write already failed: recycle this buffer
                // and surface the error instead of queueing more.
                d.bufs.push(data);
                return Err(e);
            }
            d.pending += 1;
        }
        let dispatch = {
            let mut q = self.state.queue.lock().expect("submit queue poisoned");
            q.ops.push_back(SubmitOp {
                offset,
                buf: data,
                sequential,
                queued,
            });
            if q.active {
                false
            } else {
                q.active = true;
                true
            }
        };
        if dispatch && !self.pool.dispatch(Arc::clone(&self.state)) {
            // Pool already shut down: drain inline, synchronously.
            Arc::clone(&self.state).drain_queue();
        }
        Ok(None)
    }

    fn drain_completions(&mut self, block: bool) -> Result<Vec<Vec<u8>>, FsError> {
        let mut d = self.state.done.lock().expect("completion state poisoned");
        if block {
            while d.bufs.is_empty() && d.pending > 0 {
                d = self.state.cv.wait(d).expect("completion state poisoned");
            }
        }
        if let Some(e) = d.error.take() {
            // Completed buffers stay queued for the next drain; the
            // error is the headline.
            return Err(e);
        }
        Ok(std::mem::take(&mut d.bufs))
    }

    fn preallocate(&mut self, len: u64) -> Result<(), FsError> {
        if len > self.state.len.load(Ordering::Relaxed) {
            self.state.file.set_len(len)?;
            self.state.len.fetch_max(len, Ordering::Relaxed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::conformance;

    fn tmp_fs(tag: &str, threads: usize) -> SubmitFs {
        let dir =
            std::env::temp_dir().join(format!("panda-submitfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SubmitFs::new(dir, threads).unwrap()
    }

    #[test]
    fn conformance_suite() {
        for threads in [1, 4] {
            let fs = tmp_fs(&format!("conf{threads}"), threads);
            conformance::basic_roundtrip(&fs);
            conformance::read_past_end_errors(&fs);
            conformance::open_missing_errors(&fs);
            conformance::create_truncates(&fs);
            conformance::sparse_write_zero_fills(&fs);
            conformance::remove_and_list(&fs);
            conformance::submit_path_roundtrip(&fs);
            conformance::stats_track_sequentiality(&fs);
            let root = fs.root().to_path_buf();
            drop(fs);
            let _ = fs::remove_dir_all(root);
        }
    }

    #[test]
    fn zero_completion_threads_rejected() {
        let dir = std::env::temp_dir().join(format!("panda-submitfs-zero-{}", std::process::id()));
        assert!(matches!(
            SubmitFs::new(&dir, 0).map(|_| ()).unwrap_err(),
            FsError::Io(_)
        ));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_escaping_paths() {
        let fs = tmp_fs("escape", 1);
        assert!(matches!(
            fs.create("../evil").map(|_| ()).unwrap_err(),
            FsError::InvalidPath { .. }
        ));
        let root = fs.root().to_path_buf();
        drop(fs);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn submitted_writes_survive_backend_drop() {
        // Dropping the backend joins the completion threads after the
        // queue drains: submitted-but-unread data must still be there.
        let dir = std::env::temp_dir().join(format!("panda-submitfs-drop-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let fs = SubmitFs::new(&dir, 2).unwrap();
        let mut h = fs.create("late.dat").unwrap();
        for i in 0..64u64 {
            assert!(h.submit_write(i * 8, vec![i as u8; 8]).unwrap().is_none());
        }
        drop(fs); // joins threads; queue drains first
        h.sync().unwrap();
        let mut buf = vec![0u8; 8];
        h.read_at(63 * 8, &mut buf).unwrap();
        assert_eq!(buf, vec![63u8; 8]);
        drop(h);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_files_many_threads_interleave_correctly() {
        let fs = tmp_fs("many", 3);
        let mut handles: Vec<_> = (0..6)
            .map(|f| fs.create(&format!("f{f}.dat")).unwrap())
            .collect();
        // Interleave submissions across files; per-file order and final
        // bytes must be exact regardless of which thread completes what.
        for round in 0..32u64 {
            for (f, h) in handles.iter_mut().enumerate() {
                let fill = (f as u8) ^ (round as u8);
                assert!(h
                    .submit_write(round * 16, vec![fill; 16])
                    .unwrap()
                    .is_none());
            }
        }
        for (f, h) in handles.iter_mut().enumerate() {
            h.sync().unwrap();
            assert_eq!(h.len(), 32 * 16);
            let mut buf = vec![0u8; 16];
            for round in 0..32u64 {
                h.read_at(round * 16, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    vec![(f as u8) ^ (round as u8); 16],
                    "file {f} round {round}"
                );
            }
            // Buffers recycle: all 32 come back across the drains.
            let drained = h.drain_completions(false).unwrap();
            assert_eq!(drained.len(), 32);
        }
        let root = fs.root().to_path_buf();
        drop(fs);
        drop(handles);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn preallocate_extends_but_never_truncates() {
        let fs = tmp_fs("prealloc", 1);
        let mut h = fs.create("p.dat").unwrap();
        h.preallocate(64).unwrap();
        assert_eq!(h.len(), 64);
        h.write_at(0, b"data").unwrap();
        h.preallocate(8).unwrap(); // smaller: no-op
        assert_eq!(h.len(), 64);
        let mut buf = vec![1u8; 64];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..4], b"data");
        assert!(buf[4..].iter().all(|&b| b == 0));
        let root = fs.root().to_path_buf();
        drop((h, fs));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn submit_events_reach_the_recorder() {
        let dir = std::env::temp_dir().join(format!("panda-submitfs-rec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        let fs =
            SubmitFs::with_recorder(&dir, 2, Arc::clone(&rec) as Arc<dyn Recorder>, 7).unwrap();
        let mut h = fs.create("e.bin").unwrap();
        assert!(h.submit_write(0, vec![1u8; 128]).unwrap().is_none());
        assert!(h.submit_write(128, vec![2u8; 128]).unwrap().is_none());
        h.sync().unwrap();
        let tl = rec.timeline().unwrap();
        use panda_obs::EventKind;
        let count = |k: EventKind| tl.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::FsSubmit), 2);
        assert_eq!(count(EventKind::FsWrite), 2);
        assert_eq!(count(EventKind::FsComplete), 2);
        assert_eq!(count(EventKind::FsSync), 1);
        assert!(tl.iter().all(|e| e.node == 7));
        // Sequentiality was classified at submission: both writes are
        // sequential even if completion reordered across threads.
        assert_eq!(fs.stats().seeks(), 0);
        assert_eq!(fs.stats().sequential_ops(), 2);
        let root = fs.root().to_path_buf();
        drop((h, fs));
        let _ = fs::remove_dir_all(root);
    }
}
