//! A rate-limited file system: the "slow disk" counterpart of
//! [`NullFs`](crate::NullFs)'s infinitely fast one.
//!
//! The paper's pipelining argument (overlapping the client exchange
//! with disk I/O) only has teeth when the disk actually takes time; on
//! a modern machine a `LocalFs` under a RAM-backed `/tmp` finishes a
//! subchunk write in microseconds and leaves nothing to hide.
//! [`ThrottledFs`] wraps any backend and charges each access a device
//! time `op_overhead + bytes / bandwidth`, spent in a real blocking
//! sleep *after* the inner call — exactly like a disk whose DMA engine
//! transfers while the CPU is free, which is what makes the overlap
//! measurable even on one core. The wrapped backend does the actual
//! storage, so files, stats, and sequentiality accounting are real.
//!
//! When a recorder is attached (via [`ThrottledFs::set_recorder`] or at
//! construction), each sleep is surfaced as a
//! [`panda_obs::Event::ThrottleSleep`] so throttled benchmarks can
//! separate simulated device time from real work in the run report.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use panda_obs::{Event, Recorder};

use crate::aix::{AixModel, IoDirection};
use crate::error::FsError;
use crate::stats::IoStats;
use crate::traits::{FileHandle, FileSystem};

/// Per-direction cost parameters of the simulated device.
#[derive(Debug, Clone, Copy)]
struct Cost {
    /// Seconds of device time per byte moved.
    secs_per_byte: f64,
    /// Fixed device time per operation.
    op_overhead: Duration,
}

impl Cost {
    /// Sleep for the simulated device time of a `bytes`-sized transfer
    /// and return how long that was.
    fn charge(&self, bytes: usize) -> Duration {
        let t = self.op_overhead + Duration::from_secs_f64(self.secs_per_byte * bytes as f64);
        if !t.is_zero() {
            std::thread::sleep(t);
        }
        t
    }
}

/// Shared recorder hookup for all handles of one [`ThrottledFs`].
#[derive(Debug)]
struct ThrottleObs {
    node: AtomicU32,
    external: RwLock<Arc<dyn Recorder>>,
}

impl ThrottleObs {
    fn emit_sleep(&self, bytes: usize, write: bool, dur: Duration) {
        let external = self.external.read();
        if external.enabled() {
            external.record(
                self.node.load(Ordering::Relaxed),
                &Event::ThrottleSleep {
                    bytes: bytes as u64,
                    write,
                    dur,
                },
            );
        }
    }
}

/// A [`FileSystem`] decorator that makes every access take realistic
/// device time.
pub struct ThrottledFs {
    inner: Arc<dyn FileSystem>,
    read: Cost,
    write: Cost,
    obs: Arc<ThrottleObs>,
}

impl ThrottledFs {
    /// Throttle `inner` to the given read/write bandwidths (MB/s, binary
    /// megabytes) with a fixed per-operation overhead.
    pub fn new(
        inner: Arc<dyn FileSystem>,
        read_mb_s: f64,
        write_mb_s: f64,
        op_overhead: Duration,
    ) -> Self {
        let per_byte = |mb_s: f64| {
            assert!(mb_s > 0.0, "bandwidth must be positive");
            1.0 / (mb_s * crate::aix::MB)
        };
        ThrottledFs {
            inner,
            read: Cost {
                secs_per_byte: per_byte(read_mb_s),
                op_overhead,
            },
            write: Cost {
                secs_per_byte: per_byte(write_mb_s),
                op_overhead,
            },
            obs: Arc::new(ThrottleObs {
                node: AtomicU32::new(0),
                external: RwLock::new(panda_obs::null_recorder()),
            }),
        }
    }

    /// Throttle `inner` to the paper's Table 1 AIX disk: the calibrated
    /// [`AixModel`] curve brought to life as wall-clock time. A 1 MB
    /// write really takes ≈ 0.45 s — use small arrays.
    pub fn aix(inner: Arc<dyn FileSystem>) -> Self {
        let m = AixModel::nas_sp2();
        let mut fs = Self::new(inner, 1.0, 1.0, Duration::ZERO);
        fs.read = Cost {
            secs_per_byte: 1.0 / m.raw_bandwidth,
            op_overhead: Duration::from_secs_f64(m.read_op_overhead),
        };
        fs.write = Cost {
            secs_per_byte: 1.0 / m.raw_bandwidth,
            op_overhead: Duration::from_secs_f64(m.write_op_overhead),
        };
        fs
    }

    fn wrap(&self, handle: Box<dyn FileHandle>) -> Box<dyn FileHandle> {
        Box::new(ThrottledHandle {
            inner: handle,
            read: self.read,
            write: self.write,
            obs: Arc::clone(&self.obs),
        })
    }
}

impl FileSystem for ThrottledFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        Ok(self.wrap(self.inner.create(path)?))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        Ok(self.wrap(self.inner.open(path)?))
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.inner.remove(path)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }

    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        // The inner backend reports reads/writes; this decorator adds
        // its sleep events alongside them under the same rank.
        self.inner.set_recorder(Arc::clone(&recorder), node);
        self.obs.node.store(node, Ordering::Relaxed);
        *self.obs.external.write() = recorder;
    }
}

struct ThrottledHandle {
    inner: Box<dyn FileHandle>,
    read: Cost,
    write: Cost,
    obs: Arc<ThrottleObs>,
}

impl FileHandle for ThrottledHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        self.inner.write_at(offset, data)?;
        let slept = self.write.charge(data.len());
        self.obs.emit_sleep(data.len(), true, slept);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        self.inner.read_at(offset, buf)?;
        let slept = self.read.charge(buf.len());
        self.obs.emit_sleep(buf.len(), false, slept);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn preallocate(&mut self, len: u64) -> Result<(), FsError> {
        // Metadata-only: no data moves, so no simulated device time.
        self.inner.preallocate(len)
    }

    fn sync(&mut self) -> Result<(), FsError> {
        // Data was already "on the device" when each write returned;
        // charge only the syscall-ish fixed cost.
        self.inner.sync()?;
        let slept = self.write.charge(0);
        self.obs.emit_sleep(0, true, slept);
        Ok(())
    }
}

/// The model a [`ThrottledFs::aix`] instance reproduces, for asserting
/// expected durations in tests and reports.
pub fn aix_wall_clock(bytes: usize, dir: IoDirection) -> Duration {
    Duration::from_secs_f64(AixModel::nas_sp2().access_time(bytes, dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFs;
    use std::time::Instant;

    #[test]
    fn delegates_storage_to_inner() {
        let mem = Arc::new(MemFs::new());
        let fs = ThrottledFs::new(
            Arc::clone(&mem) as Arc<dyn FileSystem>,
            10_000.0,
            10_000.0,
            Duration::ZERO,
        );
        let mut h = fs.create("a.dat").unwrap();
        h.write_at(0, b"hello").unwrap();
        h.sync().unwrap();
        assert_eq!(h.len(), 5);
        drop(h);
        assert!(fs.exists("a.dat"));
        assert_eq!(mem.contents("a.dat").unwrap(), b"hello");
        let mut buf = vec![0u8; 5];
        fs.open("a.dat").unwrap().read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        fs.remove("a.dat").unwrap();
        assert!(!mem.exists("a.dat"));
    }

    #[test]
    fn accesses_take_the_configured_time() {
        let fs = ThrottledFs::new(
            Arc::new(MemFs::new()),
            1.0, // 1 MB/s
            1.0,
            Duration::from_millis(2),
        );
        let mut h = fs.create("t.dat").unwrap();
        let start = Instant::now();
        h.write_at(0, &[0u8; 16 << 10]).unwrap(); // 16 KB at 1 MB/s ≈ 15.6 ms
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(17),
            "write returned after {elapsed:?}, expected ≥ 2 ms overhead + 15.6 ms transfer"
        );
    }

    #[test]
    fn aix_preset_matches_the_model_curve() {
        // A 64 KB AIX write should take model time (≈ 0.136 s); bound
        // it loosely from below to keep the test robust.
        let fs = ThrottledFs::aix(Arc::new(MemFs::new()));
        let mut h = fs.create("t.dat").unwrap();
        let start = Instant::now();
        h.write_at(0, &[0u8; 64 << 10]).unwrap();
        let elapsed = start.elapsed();
        let modeled = aix_wall_clock(64 << 10, IoDirection::Write);
        assert!(
            elapsed >= modeled.mul_f64(0.95),
            "AIX-throttled write took {elapsed:?}, model says {modeled:?}"
        );
    }

    #[test]
    fn sleeps_are_recorded_as_throttle_events() {
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        let fs = ThrottledFs::new(
            Arc::new(MemFs::new()),
            1000.0,
            1000.0,
            Duration::from_millis(1),
        );
        fs.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, 9);
        let mut h = fs.create("t.dat").unwrap();
        h.write_at(0, &[0u8; 1024]).unwrap();
        let mut buf = [0u8; 512];
        h.read_at(0, &mut buf).unwrap();
        let sleeps: Vec<_> = rec
            .timeline()
            .unwrap()
            .into_iter()
            .filter(|e| e.kind == panda_obs::EventKind::ThrottleSleep)
            .collect();
        assert_eq!(sleeps.len(), 2);
        assert!(sleeps.iter().all(|e| e.node == 9));
        assert!(sleeps.iter().all(|e| e.dur_nanos >= 1_000_000));
        assert_eq!(sleeps[0].bytes, 1024);
        // The inner MemFs reports the real accesses under the same rank.
        assert!(rec
            .timeline()
            .unwrap()
            .iter()
            .any(|e| e.kind == panda_obs::EventKind::FsWrite && e.node == 9));
    }
}
