//! The "infinitely fast disk".
//!
//! Paper §3: "we simulated an infinitely fast disk by commenting out the
//! actual file system open/close/write/read commands in the Panda server
//! code." `NullFs` is that experiment as a backend: writes are counted
//! and discarded, reads are counted and zero-filled, and file lengths are
//! tracked so the protocol logic upstream is untouched.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use panda_obs::{Event, Recorder};

use crate::error::FsError;
use crate::obs::FsObs;
use crate::stats::{IoStats, SeqTracker};
use crate::traits::{FileHandle, FileSystem};

/// A backend that stores no data. Lengths are tracked per file so that
/// subsequent reads of previously "written" ranges succeed (returning
/// zeros), exactly as the paper's commented-out-I/O servers behaved.
#[derive(Debug, Default)]
pub struct NullFs {
    lengths: Arc<Mutex<BTreeMap<String, u64>>>,
    obs: Arc<FsObs>,
}

impl NullFs {
    /// Create an empty null backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// As [`NullFs::new`], reporting every access to `recorder` as node
    /// `node` (its fabric rank; `PandaSystem` installs this
    /// automatically via [`FileSystem::set_recorder`]).
    pub fn with_recorder(recorder: Arc<dyn Recorder>, node: u32) -> Self {
        NullFs {
            lengths: Arc::default(),
            obs: Arc::new(FsObs::with_recorder(recorder, node)),
        }
    }

    fn handle(&self, path: &str) -> Box<dyn FileHandle> {
        Box::new(NullHandle {
            path: path.to_string(),
            lengths: Arc::clone(&self.lengths),
            obs: Arc::clone(&self.obs),
            tracker: SeqTracker::default(),
        })
    }
}

impl FileSystem for NullFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        self.lengths.lock().insert(path.to_string(), 0);
        Ok(self.handle(path))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        if !self.lengths.lock().contains_key(path) {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        Ok(self.handle(path))
    }

    fn exists(&self, path: &str) -> bool {
        self.lengths.lock().contains_key(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.lengths
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound {
                path: path.to_string(),
            })
    }

    fn list(&self) -> Vec<String> {
        self.lengths.lock().keys().cloned().collect()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.obs.stats()
    }

    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        self.obs.set_recorder(recorder, node);
    }
}

struct NullHandle {
    path: String,
    lengths: Arc<Mutex<BTreeMap<String, u64>>>,
    obs: Arc<FsObs>,
    tracker: SeqTracker,
}

impl FileHandle for NullHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, data.len());
        {
            let mut lengths = self.lengths.lock();
            let len = lengths.entry(self.path.clone()).or_insert(0);
            *len = (*len).max(offset + data.len() as u64);
        }
        self.obs.emit(&Event::FsWrite {
            file: &self.path,
            offset,
            bytes: data.len() as u64,
            sequential,
            dur: Duration::ZERO,
        });
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, buf.len());
        let file_len = *self.lengths.lock().get(&self.path).unwrap_or(&0);
        if offset + buf.len() as u64 > file_len {
            return Err(FsError::ReadPastEnd {
                offset,
                len: buf.len(),
                file_len,
            });
        }
        buf.fill(0);
        self.obs.emit(&Event::FsRead {
            file: &self.path,
            offset,
            bytes: buf.len() as u64,
            sequential,
            dur: Duration::ZERO,
        });
        Ok(())
    }

    fn len(&self) -> u64 {
        *self.lengths.lock().get(&self.path).unwrap_or(&0)
    }

    fn sync(&mut self) -> Result<(), FsError> {
        self.obs.emit(&Event::FsSync {
            file: &self.path,
            dur: Duration::ZERO,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::conformance;

    #[test]
    fn partial_conformance() {
        // NullFs satisfies every conformance property that does not
        // depend on stored data surviving.
        let fs = NullFs::new();
        conformance::read_past_end_errors(&fs);
        conformance::open_missing_errors(&fs);
        conformance::create_truncates(&fs);
        conformance::remove_and_list(&fs);
        conformance::stats_track_sequentiality(&fs);
    }

    #[test]
    fn reads_return_zeros_but_lengths_are_real() {
        let fs = NullFs::new();
        let mut h = fs.create("x").unwrap();
        h.write_at(0, &[1, 2, 3, 4]).unwrap();
        assert_eq!(h.len(), 4);
        let mut buf = [9u8; 4];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0, 0]);
        assert_eq!(fs.stats().bytes_written(), 4);
        assert_eq!(fs.stats().bytes_read(), 4);
    }
}
