//! In-memory file system for deterministic tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::FsError;
use crate::stats::{IoStats, SeqTracker};
use crate::trace::{TraceEntry, TraceKind, TraceLog};
use crate::traits::{FileHandle, FileSystem};

type FileData = Arc<Mutex<Vec<u8>>>;

/// A file system held entirely in memory. Cheap, deterministic, and
/// shared-reference friendly; the default backend of the test suite.
#[derive(Debug, Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, FileData>>,
    stats: Arc<IoStats>,
    trace: Option<Arc<TraceLog>>,
}

impl MemFs {
    /// Create an empty in-memory file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// As [`MemFs::new`], additionally recording the first
    /// `trace_capacity` accesses for inspection via [`MemFs::trace`].
    pub fn with_trace(trace_capacity: usize) -> Self {
        MemFs {
            trace: Some(Arc::new(TraceLog::new(trace_capacity))),
            ..Self::default()
        }
    }

    /// The access trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Arc<TraceLog>> {
        self.trace.as_ref()
    }

    /// Read a whole file's contents (test convenience).
    pub fn contents(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        let contents = data.lock().clone();
        Ok(contents)
    }
}

impl FileSystem for MemFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let data: FileData = Arc::new(Mutex::new(Vec::new()));
        self.files
            .lock()
            .insert(path.to_string(), Arc::clone(&data));
        Ok(Box::new(MemHandle {
            path: path.to_string(),
            data,
            stats: Arc::clone(&self.stats),
            tracker: SeqTracker::default(),
            trace: self.trace.clone(),
        }))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        Ok(Box::new(MemHandle {
            path: path.to_string(),
            data: Arc::clone(data),
            stats: Arc::clone(&self.stats),
            tracker: SeqTracker::default(),
            trace: self.trace.clone(),
        }))
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound {
                path: path.to_string(),
            })
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

struct MemHandle {
    path: String,
    data: FileData,
    stats: Arc<IoStats>,
    tracker: SeqTracker,
    trace: Option<Arc<TraceLog>>,
}

impl MemHandle {
    fn record(&self, kind: TraceKind, offset: u64, len: usize, sequential: bool) {
        if let Some(trace) = &self.trace {
            trace.record(TraceEntry {
                kind,
                file: self.path.clone(),
                offset,
                len,
                sequential,
            });
        }
    }
}

impl FileHandle for MemHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, data.len());
        let mut file = self.data.lock();
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
        self.stats.record_write(data.len(), sequential);
        self.record(TraceKind::Write, offset, data.len(), sequential);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, buf.len());
        let file = self.data.lock();
        let end = offset as usize + buf.len();
        if end > file.len() {
            return Err(FsError::ReadPastEnd {
                offset,
                len: buf.len(),
                file_len: file.len() as u64,
            });
        }
        buf.copy_from_slice(&file[offset as usize..end]);
        self.stats.record_read(buf.len(), sequential);
        self.record(TraceKind::Read, offset, buf.len(), sequential);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn sync(&mut self) -> Result<(), FsError> {
        self.stats.record_sync();
        self.record(TraceKind::Sync, 0, 0, true);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::conformance;

    #[test]
    fn conformance_suite() {
        let fs = MemFs::new();
        conformance::basic_roundtrip(&fs);
        conformance::read_past_end_errors(&fs);
        conformance::open_missing_errors(&fs);
        conformance::create_truncates(&fs);
        conformance::sparse_write_zero_fills(&fs);
        conformance::remove_and_list(&fs);
        conformance::stats_track_sequentiality(&fs);
    }

    #[test]
    fn contents_reads_whole_file() {
        let fs = MemFs::new();
        let mut h = fs.create("x").unwrap();
        h.write_at(0, b"panda").unwrap();
        assert_eq!(fs.contents("x").unwrap(), b"panda");
        assert!(fs.contents("y").is_err());
    }

    #[test]
    fn trace_records_accesses() {
        let fs = MemFs::with_trace(8);
        let mut h = fs.create("t").unwrap();
        h.write_at(0, &[0; 4]).unwrap();
        h.write_at(8, &[0; 4]).unwrap(); // seek
        h.sync().unwrap();
        let trace = fs.trace().unwrap().entries();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].kind, TraceKind::Write);
        assert!(trace[0].sequential);
        assert!(!trace[1].sequential);
        assert_eq!(trace[2].kind, TraceKind::Sync);
        assert!(MemFs::new().trace().is_none());
    }

    #[test]
    fn two_handles_share_the_file() {
        let fs = MemFs::new();
        let mut w = fs.create("x").unwrap();
        w.write_at(0, b"abcd").unwrap();
        let mut r = fs.open("x").unwrap();
        let mut buf = [0u8; 4];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        // Writes through one handle are visible through the other.
        w.write_at(0, b"ZZ").unwrap();
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ZZcd");
    }
}
