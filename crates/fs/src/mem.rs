//! In-memory file system for deterministic tests.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use panda_obs::{Event, Recorder};

use crate::error::FsError;
use crate::obs::FsObs;
use crate::stats::{IoStats, SeqTracker};
use crate::traits::{FileHandle, FileSystem};

type FileData = Arc<Mutex<Vec<u8>>>;

/// A file system held entirely in memory. Cheap, deterministic, and
/// shared-reference friendly; the default backend of the test suite.
#[derive(Debug, Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, FileData>>,
    obs: Arc<FsObs>,
}

impl MemFs {
    /// Create an empty in-memory file system.
    pub fn new() -> Self {
        Self::default()
    }

    /// As [`MemFs::new`], reporting every access to `recorder` as node
    /// `node` (its fabric rank; `PandaSystem` installs this
    /// automatically via [`FileSystem::set_recorder`]).
    pub fn with_recorder(recorder: Arc<dyn Recorder>, node: u32) -> Self {
        MemFs {
            files: Mutex::new(BTreeMap::new()),
            obs: Arc::new(FsObs::with_recorder(recorder, node)),
        }
    }

    /// Read a whole file's contents (test convenience).
    pub fn contents(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        let contents = data.lock().clone();
        Ok(contents)
    }

    fn handle(&self, path: &str, data: FileData) -> Box<dyn FileHandle> {
        Box::new(MemHandle {
            path: path.to_string(),
            data,
            obs: Arc::clone(&self.obs),
            tracker: SeqTracker::default(),
        })
    }
}

impl FileSystem for MemFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let data: FileData = Arc::new(Mutex::new(Vec::new()));
        self.files
            .lock()
            .insert(path.to_string(), Arc::clone(&data));
        Ok(self.handle(path, data))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| FsError::NotFound {
            path: path.to_string(),
        })?;
        Ok(self.handle(path, Arc::clone(data)))
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound {
                path: path.to_string(),
            })
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.obs.stats()
    }

    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        self.obs.set_recorder(recorder, node);
    }
}

struct MemHandle {
    path: String,
    data: FileData,
    obs: Arc<FsObs>,
    tracker: SeqTracker,
}

impl FileHandle for MemHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, data.len());
        let start = self.obs.timed().then(Instant::now);
        {
            let mut file = self.data.lock();
            let end = offset as usize + data.len();
            if file.len() < end {
                file.resize(end, 0);
            }
            file[offset as usize..end].copy_from_slice(data);
        }
        self.obs.emit(&Event::FsWrite {
            file: &self.path,
            offset,
            bytes: data.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, buf.len());
        let start = self.obs.timed().then(Instant::now);
        {
            let file = self.data.lock();
            let end = offset as usize + buf.len();
            if end > file.len() {
                return Err(FsError::ReadPastEnd {
                    offset,
                    len: buf.len(),
                    file_len: file.len() as u64,
                });
            }
            buf.copy_from_slice(&file[offset as usize..end]);
        }
        self.obs.emit(&Event::FsRead {
            file: &self.path,
            offset,
            bytes: buf.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }

    fn sync(&mut self) -> Result<(), FsError> {
        self.obs.emit(&Event::FsSync {
            file: &self.path,
            dur: Duration::ZERO,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::conformance;

    #[test]
    fn conformance_suite() {
        let fs = MemFs::new();
        conformance::basic_roundtrip(&fs);
        conformance::read_past_end_errors(&fs);
        conformance::open_missing_errors(&fs);
        conformance::create_truncates(&fs);
        conformance::sparse_write_zero_fills(&fs);
        conformance::remove_and_list(&fs);
        conformance::submit_path_roundtrip(&fs);
        conformance::stats_track_sequentiality(&fs);
    }

    #[test]
    fn contents_reads_whole_file() {
        let fs = MemFs::new();
        let mut h = fs.create("x").unwrap();
        h.write_at(0, b"panda").unwrap();
        assert_eq!(fs.contents("x").unwrap(), b"panda");
        assert!(fs.contents("y").is_err());
    }

    #[test]
    fn recorder_classifies_sequentiality() {
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        let fs = MemFs::with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, 0);
        let mut h = fs.create("t").unwrap();
        h.write_at(0, &[0; 4]).unwrap();
        h.write_at(8, &[0; 4]).unwrap(); // seek
        h.sync().unwrap();
        let tl = rec.timeline().unwrap();
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].kind, panda_obs::EventKind::FsWrite);
        assert_eq!(tl[0].sequential, Some(true));
        assert_eq!(tl[1].sequential, Some(false));
        assert_eq!(tl[2].kind, panda_obs::EventKind::FsSync);
    }

    #[test]
    fn recorder_sees_accesses_with_node_tag() {
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        let fs = MemFs::with_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, 7);
        let mut h = fs.create("r").unwrap();
        h.write_at(0, &[1; 16]).unwrap();
        h.sync().unwrap();
        let tl = rec.timeline().unwrap();
        assert_eq!(tl.len(), 2);
        assert!(tl.iter().all(|e| e.node == 7));
        assert_eq!(tl[0].kind, panda_obs::EventKind::FsWrite);
        assert_eq!(tl[0].bytes, 16);
        assert_eq!(tl[0].label.as_deref(), Some("r"));
        // The stats adapter projects the same events.
        assert_eq!(fs.stats().writes(), 1);
        assert_eq!(fs.stats().syncs(), 1);
    }

    #[test]
    fn set_recorder_attaches_mid_flight() {
        let fs = MemFs::new();
        let mut h = fs.create("x").unwrap();
        h.write_at(0, &[0; 4]).unwrap(); // before: goes only to counters
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        fs.set_recorder(Arc::clone(&rec) as Arc<dyn Recorder>, 3);
        h.write_at(4, &[0; 4]).unwrap();
        assert_eq!(rec.timeline().unwrap().len(), 1);
        assert_eq!(fs.stats().writes(), 2);
    }

    #[test]
    fn two_handles_share_the_file() {
        let fs = MemFs::new();
        let mut w = fs.create("x").unwrap();
        w.write_at(0, b"abcd").unwrap();
        let mut r = fs.open("x").unwrap();
        let mut buf = [0u8; 4];
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        // Writes through one handle are visible through the other.
        w.write_at(0, b"ZZ").unwrap();
        r.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ZZcd");
    }
}
