//! The file-system abstraction.

use std::sync::Arc;

use panda_obs::Recorder;

use crate::error::FsError;
use crate::stats::IoStats;

/// One I/O node's file system.
///
/// Panda stores each server's share of an array as one file per array
/// (per server). Backends are shared-reference friendly (`&self`
/// methods, `Send + Sync`) so a server thread can own a handle while
/// tests inspect the same backend.
pub trait FileSystem: Send + Sync {
    /// Create (or truncate) a file and return a handle positioned for
    /// sequential writing from offset 0.
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError>;

    /// Open an existing file for reading/writing.
    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError>;

    /// True iff the file exists.
    fn exists(&self, path: &str) -> bool;

    /// Remove a file.
    fn remove(&self, path: &str) -> Result<(), FsError>;

    /// All file names in the backend, sorted.
    fn list(&self) -> Vec<String>;

    /// Shared operation statistics for this backend.
    fn stats(&self) -> Arc<IoStats>;

    /// Attach an observability recorder; subsequent accesses are
    /// reported to it tagged with fabric rank `node`. The default is a
    /// no-op so minimal backends need not participate; all backends in
    /// this crate implement it, and `panda_core::PandaSystem` calls it
    /// on each server's file system at launch.
    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        let _ = (recorder, node);
    }
}

/// When the collective disk stage flushes written data to stable
/// storage. The policy is a property of the *request*, not the backend:
/// the engine applies it to whatever [`FileHandle`]s it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every subchunk write — the paper's semantics
    /// (Panda flushes with fsync after each write operation). Strictly
    /// serializes the disk stage, so it is only valid unpipelined.
    PerWrite,
    /// `fsync` each file once, as its last subchunk lands (the
    /// engine's historical behavior, and the default): a crash loses at
    /// most the files still being written, never a synced one.
    #[default]
    PerFile,
    /// One coalesced barrier at the end of the disk stage: every file
    /// is flushed once, after all writes of the collective have been
    /// submitted. Fastest (fsyncs never sit between writes), with the
    /// coarsest crash-consistency unit — the whole collective.
    PerCollective,
}

impl SyncPolicy {
    /// Stable snake_case name, used in bench output and reports.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::PerWrite => "per_write",
            SyncPolicy::PerFile => "per_file",
            SyncPolicy::PerCollective => "per_collective",
        }
    }
}

/// An open file.
///
/// All accesses are positioned (`pread`/`pwrite` style); the backend
/// classifies each as sequential or seeking for [`IoStats`].
///
/// The submission-queue methods ([`FileHandle::submit_write`],
/// [`FileHandle::drain_completions`], [`FileHandle::preallocate`]) have
/// synchronous defaults, so plain backends (MemFs, LocalFs, AixFs) get
/// correct behavior for free while `SubmitFs` overrides them with a
/// truly asynchronous path.
pub trait FileHandle: Send {
    /// Write `data` at `offset`, extending the file if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError>;

    /// Fill `buf` from `offset`; errors if the range is past EOF.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError>;

    /// Current file length in bytes.
    fn len(&self) -> u64;

    /// True iff the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush data to stable storage (the paper fsyncs after each write
    /// collective). Backends with a submission queue first wait for
    /// every submitted write to complete.
    fn sync(&mut self) -> Result<(), FsError>;

    /// Queue `data` for writing at `offset` without waiting for the
    /// device, taking ownership of the buffer.
    ///
    /// Returns `Ok(Some(buf))` when the write completed synchronously
    /// (the buffer comes straight back for reuse) and `Ok(None)` when
    /// it was queued — the buffer then resurfaces through
    /// [`FileHandle::drain_completions`]. The default implementation is
    /// the synchronous path: it delegates to [`FileHandle::write_at`]
    /// and returns the buffer immediately.
    fn submit_write(&mut self, offset: u64, data: Vec<u8>) -> Result<Option<Vec<u8>>, FsError> {
        self.write_at(offset, &data)?;
        Ok(Some(data))
    }

    /// Collect the buffers of submitted writes that have completed.
    ///
    /// With `block` set, waits until at least one pending write
    /// completes (a no-op when nothing is pending). A write error that
    /// happened asynchronously is surfaced here (and by
    /// [`FileHandle::sync`]), once. The default implementation returns
    /// an empty list: the default [`FileHandle::submit_write`] never
    /// queues anything.
    fn drain_completions(&mut self, block: bool) -> Result<Vec<Vec<u8>>, FsError> {
        let _ = block;
        Ok(Vec::new())
    }

    /// Hint that the file will grow to `len` bytes, so the backend can
    /// preallocate the extent up front (`fallocate` style) instead of
    /// growing the file write by write. Never shrinks the file. The
    /// default is a no-op.
    fn preallocate(&mut self, len: u64) -> Result<(), FsError> {
        let _ = len;
        Ok(())
    }
}

/// Exhaustive conformance checks shared by the backend test suites.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub(crate) fn basic_roundtrip(fs: &dyn FileSystem) {
        let mut h = fs.create("a.dat").unwrap();
        h.write_at(0, b"hello ").unwrap();
        h.write_at(6, b"world").unwrap();
        h.sync().unwrap();
        assert_eq!(h.len(), 11);
        drop(h);

        assert!(fs.exists("a.dat"));
        let mut h = fs.open("a.dat").unwrap();
        let mut buf = vec![0u8; 5];
        h.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        let mut all = vec![0u8; 11];
        h.read_at(0, &mut all).unwrap();
        assert_eq!(&all, b"hello world");
    }

    pub(crate) fn read_past_end_errors(fs: &dyn FileSystem) {
        let mut h = fs.create("b.dat").unwrap();
        h.write_at(0, b"abc").unwrap();
        let mut buf = vec![0u8; 4];
        assert!(matches!(
            h.read_at(1, &mut buf).unwrap_err(),
            FsError::ReadPastEnd { .. }
        ));
    }

    pub(crate) fn open_missing_errors(fs: &dyn FileSystem) {
        assert!(matches!(
            fs.open("missing.dat").map(|_| ()).unwrap_err(),
            FsError::NotFound { .. }
        ));
        assert!(!fs.exists("missing.dat"));
    }

    pub(crate) fn create_truncates(fs: &dyn FileSystem) {
        let mut h = fs.create("c.dat").unwrap();
        h.write_at(0, b"0123456789").unwrap();
        drop(h);
        let h = fs.create("c.dat").unwrap();
        assert_eq!(h.len(), 0);
    }

    pub(crate) fn sparse_write_zero_fills(fs: &dyn FileSystem) {
        let mut h = fs.create("d.dat").unwrap();
        h.write_at(4, b"xy").unwrap();
        assert_eq!(h.len(), 6);
        let mut buf = vec![9u8; 6];
        h.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, &[0, 0, 0, 0, b'x', b'y']);
    }

    pub(crate) fn remove_and_list(fs: &dyn FileSystem) {
        fs.create("z1.dat").unwrap();
        fs.create("z2.dat").unwrap();
        let listed = fs.list();
        assert!(listed.contains(&"z1.dat".to_string()));
        assert!(listed.contains(&"z2.dat".to_string()));
        fs.remove("z1.dat").unwrap();
        assert!(!fs.exists("z1.dat"));
        assert!(fs.exists("z2.dat"));
        assert!(matches!(
            fs.remove("z1.dat").unwrap_err(),
            FsError::NotFound { .. }
        ));
    }

    pub(crate) fn submit_path_roundtrip(fs: &dyn FileSystem) {
        let mut h = fs.create("q.dat").unwrap();
        h.preallocate(12).unwrap();
        let mut returned = 0usize;
        for (i, chunk) in [b"abcd".to_vec(), b"efgh".to_vec(), b"ijkl".to_vec()]
            .into_iter()
            .enumerate()
        {
            if let Some(buf) = h.submit_write(i as u64 * 4, chunk).unwrap() {
                assert_eq!(buf.len(), 4);
                returned += 1;
            }
        }
        // sync barriers every queued write; after it the completed
        // buffers are all drainable (sync path returns none by then).
        h.sync().unwrap();
        for buf in h.drain_completions(false).unwrap() {
            assert_eq!(buf.len(), 4);
            returned += 1;
        }
        assert_eq!(returned, 3, "every submitted buffer must come back");
        assert_eq!(h.len(), 12);
        let mut all = vec![0u8; 12];
        h.read_at(0, &mut all).unwrap();
        assert_eq!(&all, b"abcdefghijkl");
        // A blocking drain with nothing pending must not block.
        assert!(h.drain_completions(true).unwrap().is_empty());
    }

    pub(crate) fn stats_track_sequentiality(fs: &dyn FileSystem) {
        let base_seq = fs.stats().sequential_ops();
        let base_seek = fs.stats().seeks();
        let mut h = fs.create("s.dat").unwrap();
        h.write_at(0, &[0; 8]).unwrap(); // sequential
        h.write_at(8, &[0; 8]).unwrap(); // sequential
        h.write_at(0, &[0; 4]).unwrap(); // seek
        h.sync().unwrap();
        assert_eq!(fs.stats().sequential_ops() - base_seq, 2);
        assert_eq!(fs.stats().seeks() - base_seek, 1);
        assert!(fs.stats().syncs() >= 1);
        assert!(fs.stats().bytes_written() >= 20);
    }
}
