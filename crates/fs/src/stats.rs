//! I/O statistics with sequentiality accounting.
//!
//! Server-directed I/O exists to make file access sequential (paper §2:
//! "maximize i/o performance by doing sequential reads and writes
//! whenever possible"). Every backend in this crate classifies each
//! positioned access: if it starts exactly where the previous access on
//! the same handle ended (or at offset 0 on a fresh handle), it is
//! *sequential*; otherwise it is a *seek*. Integration tests assert that
//! Panda collectives produce zero seeks while the naive client-directed
//! baseline produces many.
//!
//! Since the unified observability layer landed, [`IoStats`] is a thin
//! read adapter over a [`panda_obs::CountingRecorder`]: backends report
//! [`panda_obs::Event::FsRead`] / [`panda_obs::Event::FsWrite`] /
//! [`panda_obs::Event::FsSync`] events and this type merely projects the
//! familiar
//! counter names out of them. The accessor API is unchanged.

use std::sync::Arc;

use panda_obs::{CountingRecorder, EventKind};

/// Shared operation counters for one file-system backend, projected
/// from the backend's event stream.
#[derive(Debug)]
pub struct IoStats {
    counting: Arc<CountingRecorder>,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl IoStats {
    /// Fresh zeroed counters over a private recorder. Backends do not
    /// use this (they share their recorder via [`IoStats::over`]); it
    /// exists for tests and standalone accounting.
    pub fn new() -> Self {
        Self::over(Arc::new(CountingRecorder::new()))
    }

    /// An adapter reading from `counting`.
    pub fn over(counting: Arc<CountingRecorder>) -> Self {
        IoStats { counting }
    }

    /// The event counters this adapter projects from.
    pub fn recorder(&self) -> &Arc<CountingRecorder> {
        &self.counting
    }

    /// Number of read operations.
    pub fn reads(&self) -> u64 {
        self.counting.count(EventKind::FsRead)
    }

    /// Number of write operations.
    pub fn writes(&self) -> u64 {
        self.counting.count(EventKind::FsWrite)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.counting.bytes(EventKind::FsRead)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.counting.bytes(EventKind::FsWrite)
    }

    /// Accesses that required a seek (did not continue the previous
    /// access on their handle).
    pub fn seeks(&self) -> u64 {
        self.counting.fs_seeks()
    }

    /// Accesses that continued sequentially.
    pub fn sequential_ops(&self) -> u64 {
        self.counting.fs_sequential()
    }

    /// Number of `sync` calls.
    pub fn syncs(&self) -> u64 {
        self.counting.count(EventKind::FsSync)
    }

    /// Fraction of accesses that were sequential, in `[0, 1]`; 1.0 when
    /// there were no accesses at all.
    pub fn sequential_fraction(&self) -> f64 {
        let seq = self.sequential_ops() as f64;
        let total = seq + self.seeks() as f64;
        if total == 0.0 {
            1.0
        } else {
            seq / total
        }
    }
}

/// Tracks the next sequential offset for one file handle.
#[derive(Debug, Default)]
pub(crate) struct SeqTracker {
    next_offset: Option<u64>,
}

impl SeqTracker {
    /// Classify an access at `offset`, updating the expectation to
    /// `offset + len`. The first access on a handle is sequential iff it
    /// starts at offset 0.
    pub(crate) fn classify(&mut self, offset: u64, len: usize) -> bool {
        let sequential = match self.next_offset {
            Some(expected) => offset == expected,
            None => offset == 0,
        };
        self.next_offset = Some(offset + len as u64);
        sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_obs::{Event, Recorder};
    use std::time::Duration;

    #[test]
    fn seq_tracker_classifies() {
        let mut t = SeqTracker::default();
        assert!(t.classify(0, 10)); // fresh handle at 0
        assert!(t.classify(10, 5)); // continues
        assert!(!t.classify(30, 5)); // seek
        assert!(t.classify(35, 1)); // continues after seek
        let mut t2 = SeqTracker::default();
        assert!(!t2.classify(100, 4)); // fresh handle not at 0 → seek
    }

    #[test]
    fn stats_project_recorded_events() {
        let s = IoStats::new();
        let rec = Arc::clone(s.recorder());
        let write = |bytes: u64, offset: u64, sequential: bool| {
            rec.record(
                0,
                &Event::FsWrite {
                    file: "f",
                    offset,
                    bytes,
                    sequential,
                    dur: Duration::ZERO,
                },
            );
        };
        write(100, 0, true);
        write(50, 999, false);
        rec.record(
            0,
            &Event::FsRead {
                file: "f",
                offset: 0,
                bytes: 10,
                sequential: true,
                dur: Duration::ZERO,
            },
        );
        rec.record(
            0,
            &Event::FsSync {
                file: "f",
                dur: Duration::ZERO,
            },
        );
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.bytes_read(), 10);
        assert_eq!(s.seeks(), 1);
        assert_eq!(s.sequential_ops(), 2);
        assert_eq!(s.syncs(), 1);
        assert!((s.sequential_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_fraction_with_no_ops_is_one() {
        assert_eq!(IoStats::new().sequential_fraction(), 1.0);
    }
}
