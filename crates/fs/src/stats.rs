//! I/O statistics with sequentiality accounting.
//!
//! Server-directed I/O exists to make file access sequential (paper §2:
//! "maximize i/o performance by doing sequential reads and writes
//! whenever possible"). Every backend in this crate classifies each
//! positioned access: if it starts exactly where the previous access on
//! the same handle ended (or at offset 0 on a fresh handle), it is
//! *sequential*; otherwise it is a *seek*. Integration tests assert that
//! Panda collectives produce zero seeks while the naive client-directed
//! baseline produces many.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared operation counters for one file-system backend.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seeks: AtomicU64,
    sequential_ops: AtomicU64,
    syncs: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: usize, sequential: bool) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.record_seq(sequential);
    }

    pub(crate) fn record_write(&self, bytes: usize, sequential: bool) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.record_seq(sequential);
    }

    fn record_seq(&self, sequential: bool) {
        if sequential {
            self.sequential_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of read operations.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of write operations.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Accesses that required a seek (did not continue the previous
    /// access on their handle).
    pub fn seeks(&self) -> u64 {
        self.seeks.load(Ordering::Relaxed)
    }

    /// Accesses that continued sequentially.
    pub fn sequential_ops(&self) -> u64 {
        self.sequential_ops.load(Ordering::Relaxed)
    }

    /// Number of `sync` calls.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Fraction of accesses that were sequential, in `[0, 1]`; 1.0 when
    /// there were no accesses at all.
    pub fn sequential_fraction(&self) -> f64 {
        let seq = self.sequential_ops() as f64;
        let total = seq + self.seeks() as f64;
        if total == 0.0 {
            1.0
        } else {
            seq / total
        }
    }
}

/// Tracks the next sequential offset for one file handle.
#[derive(Debug, Default)]
pub(crate) struct SeqTracker {
    next_offset: Option<u64>,
}

impl SeqTracker {
    /// Classify an access at `offset`, updating the expectation to
    /// `offset + len`. The first access on a handle is sequential iff it
    /// starts at offset 0.
    pub(crate) fn classify(&mut self, offset: u64, len: usize) -> bool {
        let sequential = match self.next_offset {
            Some(expected) => offset == expected,
            None => offset == 0,
        };
        self.next_offset = Some(offset + len as u64);
        sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_tracker_classifies() {
        let mut t = SeqTracker::default();
        assert!(t.classify(0, 10)); // fresh handle at 0
        assert!(t.classify(10, 5)); // continues
        assert!(!t.classify(30, 5)); // seek
        assert!(t.classify(35, 1)); // continues after seek
        let mut t2 = SeqTracker::default();
        assert!(!t2.classify(100, 4)); // fresh handle not at 0 → seek
    }

    #[test]
    fn stats_aggregate() {
        let s = IoStats::new();
        s.record_write(100, true);
        s.record_write(50, false);
        s.record_read(10, true);
        s.record_sync();
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.bytes_read(), 10);
        assert_eq!(s.seeks(), 1);
        assert_eq!(s.sequential_ops(), 2);
        assert_eq!(s.syncs(), 1);
        assert!((s.sequential_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_fraction_with_no_ops_is_one() {
        assert_eq!(IoStats::new().sequential_fraction(), 1.0);
    }
}
