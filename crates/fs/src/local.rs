//! Real-file backend rooted at a directory.

use std::fs;
use std::os::unix::fs::FileExt;
use std::path::{Component, Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_obs::{Event, Recorder};

use crate::error::FsError;
use crate::obs::FsObs;
use crate::stats::{IoStats, SeqTracker};
use crate::traits::{FileHandle, FileSystem};

/// A file system backed by real files under a root directory. Used by the
/// examples and by integration tests that verify on-disk layout (e.g.
/// that concatenating the per-server files of a `BLOCK,*,*` schema yields
/// the array in traditional order).
#[derive(Debug)]
pub struct LocalFs {
    root: PathBuf,
    obs: Arc<FsObs>,
}

impl LocalFs {
    /// Create a backend rooted at `root`, creating the directory if
    /// needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, FsError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalFs {
            root,
            obs: Arc::new(FsObs::new()),
        })
    }

    /// As [`LocalFs::new`], reporting every access to `recorder` as node
    /// `node` (its fabric rank; `PandaSystem` installs this
    /// automatically via [`FileSystem::set_recorder`]).
    pub fn with_recorder(
        root: impl Into<PathBuf>,
        recorder: Arc<dyn Recorder>,
        node: u32,
    ) -> Result<Self, FsError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalFs {
            root,
            obs: Arc::new(FsObs::with_recorder(recorder, node)),
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> Result<PathBuf, FsError> {
        let rel = Path::new(path);
        if rel.is_absolute()
            || rel
                .components()
                .any(|c| matches!(c, Component::ParentDir | Component::RootDir))
        {
            return Err(FsError::InvalidPath {
                path: path.to_string(),
            });
        }
        Ok(self.root.join(rel))
    }
}

impl FileSystem for LocalFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(full)?;
        Ok(Box::new(LocalHandle {
            path: path.to_string(),
            file,
            len: 0,
            obs: Arc::clone(&self.obs),
            tracker: SeqTracker::default(),
        }))
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        let full = self.resolve(path)?;
        if !full.is_file() {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        let file = fs::OpenOptions::new().read(true).write(true).open(full)?;
        let len = file.metadata()?.len();
        Ok(Box::new(LocalHandle {
            path: path.to_string(),
            file,
            len,
            obs: Arc::clone(&self.obs),
            tracker: SeqTracker::default(),
        }))
    }

    fn exists(&self, path: &str) -> bool {
        self.resolve(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        let full = self.resolve(path)?;
        if !full.is_file() {
            return Err(FsError::NotFound {
                path: path.to_string(),
            });
        }
        fs::remove_file(full)?;
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let rel = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix}/{name}")
                };
                let p = entry.path();
                if p.is_dir() {
                    walk(&p, &rel, out);
                } else {
                    out.push(rel);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out.sort();
        out
    }

    fn stats(&self) -> Arc<IoStats> {
        self.obs.stats()
    }

    fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        self.obs.set_recorder(recorder, node);
    }
}

struct LocalHandle {
    path: String,
    file: fs::File,
    /// Cached file length: the handle is the only writer while it is
    /// open (the Panda engine gives each collective's files to exactly
    /// one disk stage), so tracking `max(end-of-write)` here avoids a
    /// `metadata` syscall on every access.
    len: u64,
    obs: Arc<FsObs>,
    tracker: SeqTracker,
}

impl FileHandle for LocalHandle {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, data.len());
        let start = self.obs.timed().then(Instant::now);
        // Positional write: `pwrite` past EOF zero-fills the gap, so
        // sparse semantics match MemFs without an explicit `set_len`.
        self.file.write_all_at(data, offset)?;
        self.len = self.len.max(offset + data.len() as u64);
        self.obs.emit(&Event::FsWrite {
            file: &self.path,
            offset,
            bytes: data.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let sequential = self.tracker.classify(offset, buf.len());
        let start = self.obs.timed().then(Instant::now);
        if offset + buf.len() as u64 > self.len {
            return Err(FsError::ReadPastEnd {
                offset,
                len: buf.len(),
                file_len: self.len,
            });
        }
        self.file.read_exact_at(buf, offset)?;
        self.obs.emit(&Event::FsRead {
            file: &self.path,
            offset,
            bytes: buf.len() as u64,
            sequential,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn preallocate(&mut self, len: u64) -> Result<(), FsError> {
        if len > self.len {
            self.file.set_len(len)?;
            self.len = len;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), FsError> {
        let start = self.obs.timed().then(Instant::now);
        self.file.sync_data()?;
        self.obs.emit(&Event::FsSync {
            file: &self.path,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::conformance;

    fn tmp_fs(tag: &str) -> LocalFs {
        let dir = std::env::temp_dir().join(format!("panda-fs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        LocalFs::new(dir).unwrap()
    }

    #[test]
    fn conformance_suite() {
        let fs = tmp_fs("conf");
        conformance::basic_roundtrip(&fs);
        conformance::read_past_end_errors(&fs);
        conformance::open_missing_errors(&fs);
        conformance::create_truncates(&fs);
        conformance::sparse_write_zero_fills(&fs);
        conformance::remove_and_list(&fs);
        conformance::submit_path_roundtrip(&fs);
        conformance::stats_track_sequentiality(&fs);
        let _ = fs::remove_dir_all(fs.root());
    }

    #[test]
    fn rejects_escaping_paths() {
        let fs = tmp_fs("escape");
        assert!(matches!(
            fs.create("../evil").map(|_| ()).unwrap_err(),
            FsError::InvalidPath { .. }
        ));
        assert!(matches!(
            fs.create("/abs").map(|_| ()).unwrap_err(),
            FsError::InvalidPath { .. }
        ));
        let _ = fs::remove_dir_all(fs.root());
    }

    #[test]
    fn nested_paths_create_directories() {
        let fs = tmp_fs("nested");
        let mut h = fs.create("group/array.0").unwrap();
        h.write_at(0, b"x").unwrap();
        assert!(fs.exists("group/array.0"));
        assert_eq!(fs.list(), vec!["group/array.0".to_string()]);
        let _ = fs::remove_dir_all(fs.root());
    }

    #[test]
    fn recorder_times_real_disk_calls() {
        let dir = std::env::temp_dir().join(format!("panda-fs-test-rec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let rec = Arc::new(panda_obs::TimelineRecorder::new());
        let fs = LocalFs::with_recorder(&dir, Arc::clone(&rec) as Arc<dyn Recorder>, 5).unwrap();
        let mut h = fs.create("d.bin").unwrap();
        h.write_at(0, &[7u8; 4096]).unwrap();
        h.sync().unwrap();
        let tl = rec.timeline().unwrap();
        assert_eq!(tl.len(), 2);
        assert!(tl.iter().all(|e| e.node == 5));
        assert_eq!(tl[0].kind, panda_obs::EventKind::FsWrite);
        let _ = fs::remove_dir_all(&dir);
    }
}
