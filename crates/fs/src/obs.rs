//! Internal bridge from file-system backends to the unified
//! [`panda_obs`] recorder API.
//!
//! Every backend owns one [`FsObs`]. It fans each access event out to:
//!
//! 1. a private [`CountingRecorder`] that backs the [`IoStats`]
//!    accessors (so the long-standing counter API keeps working),
//! 2. the externally attached [`Recorder`] (null by default; installed
//!    via `with_recorder` builders or [`crate::FileSystem::set_recorder`]).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use panda_obs::{CountingRecorder, Event, Recorder};

use crate::stats::IoStats;

/// Shared observability state of one backend instance.
#[derive(Debug)]
pub(crate) struct FsObs {
    /// Fabric rank this backend reports as (settable after creation
    /// because backends are usually built before ranks are assigned).
    node: AtomicU32,
    /// Always-on counters backing [`IoStats`].
    counting: Arc<CountingRecorder>,
    /// The adapter handed out by `FileSystem::stats()`.
    stats: Arc<IoStats>,
    /// Externally attached recorder (null unless installed).
    external: RwLock<Arc<dyn Recorder>>,
}

impl FsObs {
    /// State with no external recorder.
    pub(crate) fn new() -> Self {
        Self::with_recorder(panda_obs::null_recorder(), 0)
    }

    /// State reporting to `recorder` as `node`.
    pub(crate) fn with_recorder(recorder: Arc<dyn Recorder>, node: u32) -> Self {
        let counting = Arc::new(CountingRecorder::new());
        let stats = Arc::new(IoStats::over(Arc::clone(&counting)));
        FsObs {
            node: AtomicU32::new(node),
            counting,
            stats,
            external: RwLock::new(recorder),
        }
    }

    /// The [`IoStats`] adapter for `FileSystem::stats()`.
    pub(crate) fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// Swap in an external recorder and reporting rank.
    pub(crate) fn set_recorder(&self, recorder: Arc<dyn Recorder>, node: u32) {
        self.node.store(node, Ordering::Relaxed);
        *self.external.write() = recorder;
    }

    /// Whether call sites should measure durations: only when an
    /// enabled external recorder is attached (the counting backing
    /// store never needs the clock).
    pub(crate) fn timed(&self) -> bool {
        self.external.read().enabled()
    }

    /// Fan one event out to the counters and the external recorder.
    pub(crate) fn emit(&self, event: &Event<'_>) {
        let node = self.node.load(Ordering::Relaxed);
        self.counting.record(node, event);
        let external = self.external.read();
        if external.enabled() {
            external.record(node, event);
        }
    }
}

impl Default for FsObs {
    fn default() -> Self {
        Self::new()
    }
}
