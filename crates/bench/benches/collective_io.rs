//! End-to-end benchmark of the real threaded runtime: a full collective
//! write + read over the in-process fabric and MemFs. Measures the
//! implementation's own overhead (protocol, copies, channels), not a
//! 1995 disk.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use panda_core::{ArrayMeta, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

fn natural(dim: usize) -> ArrayMeta {
    let shape = Shape::new(&[dim, dim]).unwrap();
    let mem = DataSchema::block_all(shape, ElementType::F64, Mesh::new(&[2, 2]).unwrap()).unwrap();
    ArrayMeta::natural("bench", mem).unwrap()
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_roundtrip");
    group.sample_size(20);
    for dim in [64usize, 256, 512] {
        let meta = natural(dim);
        let bytes = meta.total_bytes() as u64;
        group.throughput(Throughput::Bytes(2 * bytes)); // write + read
        group.bench_function(
            BenchmarkId::from_parameter(format!("{dim}x{dim}_f64")),
            |b| {
                let config = PandaConfig::new(4, 2).with_subchunk_bytes(1 << 18);
                let (system, mut clients) = PandaSystem::builder()
                    .config(config.clone())
                    .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
                    .unwrap();
                let datas: Vec<Vec<u8>> = (0..4)
                    .map(|r| vec![r as u8 + 1; meta.client_bytes(r)])
                    .collect();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for (client, data) in clients.iter_mut().zip(&datas) {
                            let meta = &meta;
                            s.spawn(move || {
                                client
                                    .write_set(&WriteSet::new().array(
                                        meta,
                                        "bench",
                                        data.as_slice(),
                                    ))
                                    .unwrap();
                                let mut buf = vec![0u8; data.len()];
                                client
                                    .read_set(&mut ReadSet::new().array(
                                        meta,
                                        "bench",
                                        buf.as_mut_slice(),
                                    ))
                                    .unwrap();
                            });
                        }
                    });
                });
                system.shutdown(clients).unwrap();
            },
        );
    }
    group.finish();
}

fn bench_section_read(c: &mut Criterion) {
    use panda_schema::Region;
    let mut group = c.benchmark_group("section_read");
    group.sample_size(20);
    let meta = natural(512);
    let config = PandaConfig::new(4, 2).with_subchunk_bytes(1 << 18);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    // Stage the array once.
    let datas: Vec<Vec<u8>> = (0..4)
        .map(|r| vec![r as u8 + 1; meta.client_bytes(r)])
        .collect();
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "bench", data.as_slice()))
                    .unwrap()
            });
        }
    });
    // Thin slab (1/32 of the array) vs the full array.
    for (label, section) in [
        (
            "slab_16_of_512_rows",
            Region::new(&[256, 0], &[272, 512]).unwrap(),
        ),
        ("full_array", Region::new(&[0, 0], &[512, 512]).unwrap()),
    ] {
        group.throughput(Throughput::Bytes(section.num_bytes(8) as u64));
        group.bench_function(label, |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for client in clients.iter_mut() {
                        let (meta, section) = (&meta, &section);
                        s.spawn(move || {
                            let mut buf = vec![0u8; client.section_bytes(meta, section)];
                            client
                                .read_set(&mut ReadSet::new().section(
                                    meta,
                                    "bench",
                                    section.clone(),
                                    &mut buf,
                                ))
                                .unwrap();
                        });
                    }
                });
            });
        });
    }
    group.finish();
    system.shutdown(clients).unwrap();
}

criterion_group!(benches, bench_roundtrip, bench_section_read);
criterion_main!(benches);
