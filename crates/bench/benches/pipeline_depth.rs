//! Pipeline-depth sweep over the real runtime: how much does
//! overlapping the client exchange with disk I/O buy? Depth 1 is the
//! strictly serialized order (fetch a subchunk's pieces, wait, scatter,
//! write, repeat); depth 2 is classic double-buffering; depth 4 shows
//! whether a deeper window keeps helping.
//!
//! The sweep runs over the TCP fabric ("a network of ordinary
//! workstations", paper §5) with `LocalFs` files throttled to disk
//! speed (`ThrottledFs`): real socket round trips on one side, real
//! device time on the other — the regime the paper measures, where
//! exchange and disk cost are comparable and overlap pays. The disk
//! rate is picked so one subchunk's device time is on the order of one
//! subchunk's exchange time; a RAM-backed `/tmp` alone finishes writes
//! in microseconds and leaves nothing to hide. An in-process/MemFs
//! sweep is included as the control: with no device time to hide, any
//! depth effect there is scheduling (a wider fetch window means fewer
//! client↔server thread ping-pongs) minus the pipeline's bookkeeping
//! overhead, not I/O overlap.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use panda_core::{ArrayMeta, PandaClient, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, LocalFs, MemFs, ThrottledFs};
use panda_msg::{FabricStats, TcpFabric, Transport};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const DEPTHS: [usize; 3] = [1, 2, 4];
const DIM: usize = 512; // 512x512 f64 = 2 MB per collective
const SUBCHUNK: usize = 32 << 10; // many subchunks per server => real window
const DISK_READ_MB_S: f64 = 200.0; // 32 KB ≈ 160 µs device time
const DISK_WRITE_MB_S: f64 = 150.0; // 32 KB ≈ 210 µs device time
const DISK_OP_OVERHEAD: Duration = Duration::from_micros(20);

fn natural(dim: usize) -> ArrayMeta {
    let shape = Shape::new(&[dim, dim]).unwrap();
    let mem = DataSchema::block_all(shape, ElementType::F64, Mesh::new(&[2, 2]).unwrap()).unwrap();
    ArrayMeta::natural("bench", mem).unwrap()
}

fn config(depth: usize) -> PandaConfig {
    PandaConfig::new(4, 2)
        .with_subchunk_bytes(SUBCHUNK)
        .with_pipeline_depth(depth)
        .with_recv_timeout(Duration::from_secs(30))
}

fn launch_tcp_local(root: &std::path::Path, depth: usize) -> (PandaSystem, Vec<PandaClient>) {
    let endpoints = TcpFabric::localhost(6, Duration::from_secs(30)).expect("tcp fabric");
    let transports: Vec<Box<dyn Transport>> = endpoints
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Transport>)
        .collect();
    let roots: Vec<_> = (0..2).map(|s| root.join(format!("ionode{s}"))).collect();
    PandaSystem::builder()
        .config(config(depth).clone())
        .transports(transports, Arc::new(FabricStats::new()))
        .launch(|s| {
            let disk = Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>;
            Arc::new(ThrottledFs::new(
                disk,
                DISK_READ_MB_S,
                DISK_WRITE_MB_S,
                DISK_OP_OVERHEAD,
            )) as Arc<dyn FileSystem>
        })
        .unwrap()
}

fn launch_inproc_mem(depth: usize) -> (PandaSystem, Vec<PandaClient>) {
    PandaSystem::builder()
        .config(config(depth).clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap()
}

fn collective_write(clients: &mut [PandaClient], meta: &ArrayMeta, datas: &[Vec<u8>]) {
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(datas) {
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "bench", data.as_slice()))
                    .unwrap()
            });
        }
    });
}

fn collective_read(clients: &mut [PandaClient], meta: &ArrayMeta) {
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            let meta = &*meta;
            s.spawn(move || {
                let mut buf = vec![0u8; meta.client_bytes(client.rank())];
                client
                    .read_set(&mut ReadSet::new().array(meta, "bench", buf.as_mut_slice()))
                    .unwrap();
            });
        }
    });
}

fn bench_depth_sweep_tcp(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("panda-depth-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let meta = natural(DIM);
    let bytes = meta.total_bytes() as u64;
    let datas: Vec<Vec<u8>> = (0..4)
        .map(|r| vec![r as u8 + 1; meta.client_bytes(r)])
        .collect();

    let mut group = c.benchmark_group("tcp_throttled_localfs_write");
    group.sample_size(15);
    for depth in DEPTHS {
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(BenchmarkId::from_parameter(format!("depth{depth}")), |b| {
            let (system, mut clients) = launch_tcp_local(&root, depth);
            b.iter(|| collective_write(&mut clients, &meta, &datas));
            system.shutdown(clients).unwrap();
        });
    }
    group.finish();

    // Stage the files once for the read sweep.
    let (system, mut clients) = launch_tcp_local(&root, 1);
    collective_write(&mut clients, &meta, &datas);
    system.shutdown(clients).unwrap();

    let mut group = c.benchmark_group("tcp_throttled_localfs_read");
    group.sample_size(15);
    for depth in DEPTHS {
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(BenchmarkId::from_parameter(format!("depth{depth}")), |b| {
            let (system, mut clients) = launch_tcp_local(&root, depth);
            b.iter(|| collective_read(&mut clients, &meta));
            system.shutdown(clients).unwrap();
        });
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&root);
}

fn bench_depth_sweep_inproc(c: &mut Criterion) {
    let meta = natural(DIM);
    let bytes = meta.total_bytes() as u64;
    let datas: Vec<Vec<u8>> = (0..4)
        .map(|r| vec![r as u8 + 1; meta.client_bytes(r)])
        .collect();

    let mut group = c.benchmark_group("inproc_memfs_write");
    group.sample_size(15);
    for depth in DEPTHS {
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(BenchmarkId::from_parameter(format!("depth{depth}")), |b| {
            let (system, mut clients) = launch_inproc_mem(depth);
            b.iter(|| collective_write(&mut clients, &meta, &datas));
            system.shutdown(clients).unwrap();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth_sweep_tcp, bench_depth_sweep_inproc);
criterion_main!(benches);
