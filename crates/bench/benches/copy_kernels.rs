//! Microbenchmarks of the strided copy kernels — the per-byte cost of
//! Panda's reorganization machinery (gather on clients, scatter on
//! servers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use panda_schema::{copy, Region};

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_region");
    // A 128x128x64 f64 chunk (8 MB).
    let chunk = Region::new(&[0, 0, 0], &[128, 128, 64]).unwrap();
    let src = vec![0xabu8; chunk.num_bytes(8)];

    // Contiguous: a slab of full planes (single memcpy).
    let slab = Region::new(&[32, 0, 0], &[96, 128, 64]).unwrap();
    group.throughput(Throughput::Bytes(slab.num_bytes(8) as u64));
    group.bench_function(BenchmarkId::new("contiguous", "4MB"), |b| {
        b.iter(|| copy::pack_region(&src, &chunk, &slab, 8).unwrap())
    });

    // Strided: a sub-box that is narrow in the innermost dimension.
    let strided = Region::new(&[0, 0, 0], &[128, 128, 32]).unwrap();
    group.throughput(Throughput::Bytes(strided.num_bytes(8) as u64));
    group.bench_function(BenchmarkId::new("strided_rows", "4MB"), |b| {
        b.iter(|| copy::pack_region(&src, &chunk, &strided, 8).unwrap())
    });

    // Worst case: single-element rows.
    let worst = Region::new(&[0, 0, 0], &[128, 128, 1]).unwrap();
    group.throughput(Throughput::Bytes(worst.num_bytes(8) as u64));
    group.bench_function(BenchmarkId::new("strided_elems", "128KB"), |b| {
        b.iter(|| copy::pack_region(&src, &chunk, &worst, 8).unwrap())
    });
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("unpack_region");
    let chunk = Region::new(&[0, 0, 0], &[128, 128, 64]).unwrap();
    let sub = Region::new(&[16, 16, 16], &[112, 112, 48]).unwrap();
    let data = vec![0x5au8; sub.num_bytes(8)];
    let mut dst = vec![0u8; chunk.num_bytes(8)];
    group.throughput(Throughput::Bytes(sub.num_bytes(8) as u64));
    group.bench_function("interior_box_5MB", |b| {
        b.iter(|| copy::unpack_region(&mut dst, &chunk, &sub, &data, 8).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pack, bench_unpack);
criterion_main!(benches);
