//! Microbenchmarks of the in-process message fabric: per-message
//! overhead and bulk throughput, the costs the real runtime pays where
//! the SP2 paid MPI-F.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use panda_msg::{InProcFabric, MatchSpec, NodeId, Transport};

const STOP: u32 = 99;

fn bench_ping_pong(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_ping_pong");
    for size in [0usize, 1 << 10, 1 << 20] {
        group.throughput(Throughput::Bytes(2 * size as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{size}B")), |b| {
            let (mut eps, _) = InProcFabric::new(2);
            let mut echo = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            let t = std::thread::spawn(move || loop {
                let env = echo.recv().expect("echo recv");
                if env.tag == STOP {
                    break;
                }
                echo.send(NodeId(0), 2, env.payload.into_contiguous())
                    .expect("echo send");
            });
            let payload = vec![7u8; size];
            b.iter(|| {
                a.send(NodeId(1), 1, payload.clone()).unwrap();
                a.recv_matching(MatchSpec::tag(2)).unwrap()
            });
            a.send(NodeId(1), STOP, Vec::new()).unwrap();
            t.join().unwrap();
        });
    }
    group.finish();
}

fn bench_selective_receive(c: &mut Criterion) {
    // Cost of matching through a deep pending queue — the MPI-style
    // unexpected-message queue in action.
    c.bench_function("fabric_selective_recv_depth_256", |b| {
        b.iter_with_setup(
            || {
                let (mut eps, _) = InProcFabric::new(2);
                let rx = eps.pop().unwrap();
                let mut tx = eps.pop().unwrap();
                for i in 0..256u32 {
                    tx.send(NodeId(1), i % 8, vec![i as u8]).unwrap();
                }
                (tx, rx)
            },
            |(_tx, mut rx)| {
                // Drain tag 7 first (worst-case buffering), then the rest.
                for _ in 0..32 {
                    rx.recv_matching(MatchSpec::tag(7)).unwrap();
                }
                for _ in 0..224 {
                    rx.recv().unwrap();
                }
            },
        )
    });
}

criterion_group!(benches, bench_ping_pong, bench_selective_receive);
criterion_main!(benches);
