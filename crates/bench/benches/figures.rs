//! Benchmark of the DES performance model itself: one figure point
//! (the largest — 512 MB over 32 compute / 8 I/O nodes) per iteration.
//! Keeps regenerating all seven figures interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use panda_core::OpKind;
use panda_model::experiment::{paper_array, DiskKind};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};

fn bench_simulate(c: &mut Criterion) {
    let machine = Sp2Machine::nas_sp2();
    let mut group = c.benchmark_group("simulate_figure_point");
    group.sample_size(20);
    for (label, disk) in [
        ("natural", DiskKind::Natural),
        ("traditional", DiskKind::Traditional),
    ] {
        let spec = CollectiveSpec {
            arrays: vec![paper_array(512, 32, 8, disk)],
            op: OpKind::Write,
            num_servers: 8,
            subchunk_bytes: 1 << 20,
            fast_disk: false,
            section: None,
        };
        group.bench_function(label, |b| b.iter(|| simulate(&machine, &spec)));
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
