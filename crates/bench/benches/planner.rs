//! Benchmarks of the server-directed planner at paper scale: plan
//! formation is on every collective's critical path (part of the 13 ms
//! startup the paper measures), so it must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_core::{build_server_plan, client_manifest};
use panda_model::experiment::{paper_array, DiskKind};

fn bench_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_server_plan");
    for (label, disk) in [
        ("natural", DiskKind::Natural),
        ("traditional", DiskKind::Traditional),
    ] {
        // The paper's largest run: 512 MB over 32 compute / 8 I/O nodes.
        let array = paper_array(512, 32, 8, disk);
        group.bench_function(BenchmarkId::new(label, "512MB_32c_8s"), |b| {
            b.iter(|| build_server_plan(&array, 3, 8, 1 << 20))
        });
    }
    group.finish();
}

fn bench_manifest(c: &mut Criterion) {
    let array = paper_array(512, 32, 8, DiskKind::Traditional);
    c.bench_function("client_manifest/512MB_32c_8s", |b| {
        b.iter(|| client_manifest(&array, 17, 8, 1 << 20))
    });
}

criterion_group!(benches, bench_plans, bench_manifest);
criterion_main!(benches);
