//! # panda-bench — reproduction harness for the Panda SC '95 evaluation
//!
//! One binary per table/figure of the paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — system characteristics + measured AIX peaks |
//! | `fig3` … `fig9` | Figures 3–9 — aggregate & normalized throughput sweeps |
//! | `multi_array` | the multiple-array experiment described in §3 prose |
//! | `ablation` | server-directed vs two-phase vs naive vs pipeline depth |
//! | `phases` | measured exchange/disk/reorg decomposition per pipeline depth (real runtime under a `TimelineRecorder`) |
//!
//! Each prints the paper's series (aggregate MB/s and normalized
//! throughput per array size × I/O-node count) plus the expected band
//! from the paper for comparison. Pass `--quick` to sweep a subset of
//! array sizes, `--csv` for machine-readable output.

use panda_model::experiment::{FigPoint, FigureSpec, PAPER_SIZES_MB};
use panda_model::Sp2Machine;

pub mod report;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessOpts {
    /// Sweep only {16, 128, 512} MB instead of the full ladder.
    pub quick: bool,
    /// Emit CSV instead of aligned tables.
    pub csv: bool,
}

impl HarnessOpts {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--csv" => opts.csv = true,
                other => {
                    eprintln!("unknown option {other}; supported: --quick --csv");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The array sizes to sweep.
    pub fn sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![16, 128, 512]
        } else {
            PAPER_SIZES_MB.to_vec()
        }
    }
}

/// Render one figure's results the way the paper plots them: aggregate
/// throughput and normalized throughput per (I/O nodes, array size).
pub fn print_figure(spec: &FigureSpec, points: &[FigPoint], expected_band: &str, csv: bool) {
    if csv {
        println!("figure,io_nodes,array_mb,elapsed_s,aggregate_mbs,per_io_node_mbs,normalized");
        for p in points {
            println!(
                "{},{},{},{:.4},{:.3},{:.3},{:.3}",
                spec.figure,
                p.io_nodes,
                p.array_mb,
                p.report.elapsed,
                p.report.aggregate_mbs,
                p.report.per_io_node_mbs,
                p.report.normalized
            );
        }
        return;
    }
    println!("Figure {}: {}", spec.figure, spec.title);
    println!("(paper band: {expected_band})");
    println!();

    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = points.iter().map(|p| p.array_mb).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let io_counts: Vec<usize> = {
        let mut s: Vec<usize> = points.iter().map(|p| p.io_nodes).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let lookup = |io: usize, mb: usize| -> &FigPoint {
        points
            .iter()
            .find(|p| p.io_nodes == io && p.array_mb == mb)
            .expect("complete grid")
    };

    for (title, f) in [
        (
            "aggregate throughput (MB/s)",
            (|p: &FigPoint| p.report.aggregate_mbs) as fn(&FigPoint) -> f64,
        ),
        ("normalized throughput", |p: &FigPoint| p.report.normalized),
    ] {
        println!("{title}:");
        print!("{:>10}", "array");
        for io in &io_counts {
            print!(
                "{:>12}",
                format!("{io} i/o node") + if *io == 1 { "" } else { "s" }
            );
        }
        println!();
        for mb in &sizes {
            print!("{:>10}", format!("{mb} MB"));
            for io in &io_counts {
                print!("{:>12.2}", f(lookup(*io, *mb)));
            }
            println!();
        }
        println!();
    }
}

/// Shared main for the `fig3`..`fig9` binaries.
pub fn figure_main(figure: u32, expected_band: &str) {
    let opts = HarnessOpts::from_args();
    let machine = Sp2Machine::nas_sp2();
    let spec = panda_model::experiment::figure_spec(figure);
    let points = panda_model::experiment::run_figure_sized(&machine, &spec, &opts.sizes());
    print_figure(&spec, &points, expected_band, opts.csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sizes_subset_full() {
        let quick = HarnessOpts {
            quick: true,
            csv: false,
        };
        for s in quick.sizes() {
            assert!(PAPER_SIZES_MB.contains(&s));
        }
        assert_eq!(HarnessOpts::default().sizes(), PAPER_SIZES_MB.to_vec());
    }

    #[test]
    fn print_figure_smoke() {
        // Rendering a tiny sweep must not panic.
        let machine = Sp2Machine::nas_sp2();
        let spec = panda_model::experiment::figure_spec(4);
        let points = panda_model::experiment::run_figure_sized(&machine, &spec, &[16]);
        print_figure(&spec, &points, "85-98%", false);
        print_figure(&spec, &points, "85-98%", true);
    }
}
