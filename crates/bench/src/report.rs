//! Shared measured-bench reporting: one flag parser and one JSON-line
//! builder for every bench bin.
//!
//! Each measured bench writes newline-delimited JSON — one self-
//! contained object per cell — to a `--out` path under `results/`.
//! Before this module each bin hand-rolled its own `parse_args` and
//! `json_line`; they now share [`BenchOpts::parse`] and [`JsonLine`]
//! (still built on `panda_obs::json`, so every emitted line is
//! validated before it reaches disk) and [`write_lines`] for the
//! create-dir/write/announce tail.

use panda_obs::json;

/// The common bench flags: `--quick` (CI-sized run), `--csv`
/// (machine-readable table to stdout, where the bin supports it), and
/// `--out <path>` (JSON-lines destination).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOpts {
    /// Run the CI-sized configuration.
    pub quick: bool,
    /// Emit a CSV table instead of the human-readable one.
    pub csv: bool,
    /// Destination path for the JSON-lines report.
    pub out: String,
}

impl BenchOpts {
    /// Parse `std::env::args`. `default_out` is the bin's committed
    /// artifact path (e.g. `results/BENCH_phases.json`); `accepts_csv`
    /// controls whether `--csv` is advertised and accepted. Exits with
    /// status 2 on an unknown flag, like every bench bin always has.
    pub fn parse(default_out: &str, accepts_csv: bool) -> BenchOpts {
        let mut opts = BenchOpts {
            quick: false,
            csv: false,
            out: default_out.to_string(),
        };
        let supported = if accepts_csv {
            "--quick --csv --out <path>"
        } else {
            "--quick --out <path>"
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--csv" if accepts_csv => opts.csv = true,
                "--out" => match args.next() {
                    Some(path) => opts.out = path,
                    None => {
                        eprintln!("--out requires a path");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown option {other}; supported: {supported}");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

/// Builder for one JSON object line. Keys are appended in call order;
/// [`JsonLine::finish`] closes the object and validates it, so a bench
/// cannot commit malformed output.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
}

impl JsonLine {
    /// Start a line with its `"id"` field (the cell's stable
    /// identifier, e.g. `"phases/write_read/depth2"`).
    pub fn new(id: &str) -> JsonLine {
        let mut buf = String::with_capacity(512);
        buf.push_str("{\"id\":");
        json::push_str(&mut buf, id);
        JsonLine { buf }
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonLine {
        self.key(key);
        json::push_str(&mut self.buf, value);
        self
    }

    /// Append a float field (formatted by `panda_obs::json::push_f64`).
    pub fn f64(mut self, key: &str, value: f64) -> JsonLine {
        self.key(key);
        json::push_f64(&mut self.buf, value);
        self
    }

    /// Append an integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonLine {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append a `usize` field.
    pub fn usize(self, key: &str, value: usize) -> JsonLine {
        self.u64(key, value as u64)
    }

    /// Append a pre-serialized JSON value (e.g.
    /// `RunReport::to_json()`); validated with the whole line at
    /// [`JsonLine::finish`].
    pub fn raw(mut self, key: &str, value_json: &str) -> JsonLine {
        self.key(key);
        self.buf.push_str(value_json);
        self
    }

    /// Close and validate the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        json::validate(&self.buf).expect("bench emitted invalid JSON");
        self.buf
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        json::push_str(&mut self.buf, key);
        self.buf.push(':');
    }
}

/// Write the bench's JSON lines to `out` (creating parent directories)
/// and announce the path — the shared tail of every bench `main`.
pub fn write_lines(out: &str, lines: &[String]) {
    let mut doc = String::new();
    for line in lines {
        doc.push_str(line);
        doc.push('\n');
    }
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(out, &doc).expect("write bench report");
    println!("wrote {out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_builds_valid_objects() {
        let line = JsonLine::new("bench/cell/1")
            .str("mode", "tuned")
            .u64("bytes", 4096)
            .usize("depth", 2)
            .f64("wall_s", 0.125)
            .raw("nested", "{\"a\":[1,2]}")
            .finish();
        assert!(line.starts_with("{\"id\":\"bench/cell/1\""));
        assert!(line.contains("\"mode\":\"tuned\""));
        assert!(line.contains("\"bytes\":4096"));
        assert!(line.contains("\"depth\":2"));
        assert!(line.contains("\"nested\":{\"a\":[1,2]}"));
        json::validate(&line).unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid JSON")]
    fn malformed_raw_values_are_caught_at_finish() {
        let _ = JsonLine::new("x").raw("bad", "{not json").finish();
    }

    #[test]
    fn write_lines_creates_directories() {
        let dir = std::env::temp_dir().join(format!("panda_bench_report_{}", std::process::id()));
        let path = dir.join("deep/report.json");
        let lines = vec![JsonLine::new("a").finish(), JsonLine::new("b").finish()];
        write_lines(path.to_str().unwrap(), &lines);
        let doc = std::fs::read_to_string(&path).unwrap();
        assert_eq!(doc.lines().count(), 2);
        for line in doc.lines() {
            json::validate(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
