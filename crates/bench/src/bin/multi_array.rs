//! The multiple-array experiment the paper reports in §3 prose:
//! "Panda achieves high throughputs reading and writing multiple
//! arrays, similar to the throughput for single arrays, when the size
//! of array chunks is large enough so that MPI latency is not a
//! bottleneck."
//!
//! We run a timestep-style collective over a group of three arrays and
//! compare its throughput with a single array of the same total size,
//! for chunk sizes from latency-bound (tiny) to bandwidth-bound.

use panda_core::OpKind;
use panda_model::experiment::{multi_array_spec, paper_array, DiskKind};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};

fn main() {
    let machine = Sp2Machine::nas_sp2();
    println!("Multiple-array collectives vs single array (write, natural chunking,");
    println!("8 compute nodes, 4 i/o nodes; group = 3 arrays of the listed size)");
    println!();
    println!(
        "{:>14} {:>16} {:>16} {:>8}",
        "MB per array", "group MB/s", "single MB/s", "ratio"
    );
    for mb_each in [2usize, 4, 8, 16, 64, 128] {
        let multi = simulate(&machine, &multi_array_spec(mb_each, 8, 4));
        let single = simulate(
            &machine,
            &CollectiveSpec {
                arrays: vec![paper_array(3 * mb_each, 8, 4, DiskKind::Natural)],
                op: OpKind::Write,
                num_servers: 4,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        );
        println!(
            "{:>14} {:>16.2} {:>16.2} {:>8.3}",
            mb_each,
            multi.aggregate_mbs,
            single.aggregate_mbs,
            multi.aggregate_mbs / single.aggregate_mbs
        );
    }
    println!();
    println!("expected shape: ratio ~1.0 for large chunks; multi-array overhead only");
    println!("visible at very small chunk sizes where per-collective startup and MPI");
    println!("latency dominate.");
}
