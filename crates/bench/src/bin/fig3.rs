//! Regenerate Figure 3 of the paper.

fn main() {
    panda_bench::figure_main(3, "85-98% of peak AIX read throughput per i/o node");
}
