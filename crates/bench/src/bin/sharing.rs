//! I/O-node sharing study — the paper's §5 closing question: "as Panda
//! makes it possible for each application on the SP2 to have its own
//! dedicated set of i/o nodes, we are curious about the impact of i/o
//! node sharing on i/o-intensive applications."
//!
//! Two applications issue collectives concurrently. We compare
//! (a) each with a dedicated set of I/O nodes against (b) both sharing
//! one set of the same total size, across disk-bound and network-bound
//! regimes.

use panda_core::OpKind;
use panda_model::experiment::{paper_array, DiskKind};
use panda_model::{simulate_concurrent, CollectiveSpec, Sp2Machine};

fn spec(mb: usize, compute: usize, servers: usize, fast: bool) -> CollectiveSpec {
    CollectiveSpec {
        arrays: vec![paper_array(mb, compute, servers, DiskKind::Natural)],
        op: OpKind::Write,
        num_servers: servers,
        subchunk_bytes: 1 << 20,
        fast_disk: fast,
        section: None,
    }
}

fn main() {
    let machine = Sp2Machine::nas_sp2();
    println!("Two concurrent 64 MB write collectives (8 compute nodes each):");
    println!();
    println!(
        "{:<44} {:>12} {:>12} {:>10}",
        "configuration", "app A (s)", "app B (s)", "slowdown"
    );

    for (label, fast) in [
        ("real AIX-model disks", false),
        ("infinitely fast disks", true),
    ] {
        // Dedicated: each app owns 2 I/O nodes.
        let dedicated = simulate_concurrent(
            &machine,
            &[spec(64, 8, 2, fast), spec(64, 8, 2, fast)],
            false,
        );
        // Shared: both apps contend for the SAME 4 I/O nodes (equal
        // total hardware).
        let shared = simulate_concurrent(
            &machine,
            &[spec(64, 8, 4, fast), spec(64, 8, 4, fast)],
            true,
        );
        println!(
            "{:<44} {:>12.2} {:>12.2} {:>10}",
            format!("{label}: dedicated 2+2"),
            dedicated[0].elapsed,
            dedicated[1].elapsed,
            "1.00x"
        );
        println!(
            "{:<44} {:>12.2} {:>12.2} {:>9.2}x",
            format!("{label}: shared 4"),
            shared[0].elapsed,
            shared[1].elapsed,
            shared[0].elapsed / dedicated[0].elapsed
        );
    }

    println!();
    println!("And an asymmetric mix: a big checkpoint next to a small dump, sharing 4");
    println!("i/o nodes vs the small app alone on them:");
    let alone = simulate_concurrent(&machine, &[spec(16, 8, 4, false)], false);
    let mixed = simulate_concurrent(
        &machine,
        &[spec(16, 8, 4, false), spec(256, 8, 4, false)],
        true,
    );
    println!(
        "  small app alone: {:.2} s; sharing with a 256 MB checkpoint: {:.2} s ({:.2}x)",
        alone[0].elapsed,
        mixed[0].elapsed,
        mixed[0].elapsed / alone[0].elapsed
    );
    println!();
    println!("expected shape: for symmetric loads, sharing N i/o nodes is roughly");
    println!("neutral against dedicated N/2-each (total disk capacity is conserved,");
    println!("and interleaving at shared disks even pipelines slightly better). The");
    println!("cost of sharing is isolation: a small interactive dump queued behind a");
    println!("large checkpoint slows down markedly — which is why the paper argues");
    println!("for per-application dedicated i/o node sets.");
}
