//! Schema advisor demo — the paper's stated future work (§5): predict
//! Panda's performance for each candidate disk schema and recommend one
//! per workload.
//!
//! Uses the paper's flagship configuration: a 512 MB `512x512x512` f32
//! array distributed `BLOCK,BLOCK,BLOCK` over 32 compute nodes
//! (4x4x2), with 8 I/O nodes.

use panda_model::advisor::{advise, Workload};
use panda_model::Sp2Machine;
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

fn show(title: &str, workload: &Workload, memory: &DataSchema, servers: usize) {
    let machine = Sp2Machine::nas_sp2();
    println!("workload: {title}");
    println!(
        "  ({} collective writes, {} collective reads, {} sequential consumer scans)",
        workload.writes, workload.reads, workload.consumer_scans
    );
    println!(
        "{:<38} {:>10} {:>10} {:>12} {:>12}",
        "disk schema", "write (s)", "read (s)", "consumer (s)", "total (s)"
    );
    for p in advise(&machine, "array", memory, servers, workload) {
        println!(
            "{:<38} {:>10.1} {:>10.1} {:>12.1} {:>12.0}",
            p.label, p.write_s, p.read_s, p.consumer_s, p.total_s
        );
    }
    println!();
}

fn main() {
    let shape = Shape::new(&[512, 512, 512]).unwrap();
    let memory =
        DataSchema::block_all(shape, ElementType::F32, Mesh::new(&[4, 4, 2]).unwrap()).unwrap();
    println!("memory schema: {}", memory.describe());
    println!("i/o nodes:     8");
    println!();
    show(
        "write-heavy production run",
        &Workload::write_heavy(),
        &memory,
        8,
    );
    show(
        "visualization pipeline",
        &Workload::consumer_heavy(),
        &memory,
        8,
    );
    show(
        "balanced",
        &Workload {
            writes: 20.0,
            reads: 5.0,
            consumer_scans: 2.0,
        },
        &memory,
        8,
    );
    println!("expected shape: natural chunking wins whenever the data stays on the");
    println!("parallel machine; a traditional-order schema wins as soon as sequential");
    println!("consumers scan the dataset, because chunked layouts make a row-major");
    println!("scan seek at every chunk boundary (paper §2: declare the disk schema");
    println!("\"when users know how the data will be accessed in the future\").");
}
