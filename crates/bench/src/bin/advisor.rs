//! Schema advisor demo — the paper's stated future work (§5): predict
//! Panda's performance for each candidate disk schema and recommend one
//! per workload.
//!
//! Uses the paper's flagship configuration: a 512 MB `512x512x512` f32
//! array distributed `BLOCK,BLOCK,BLOCK` over 32 compute nodes
//! (4x4x2), with 8 I/O nodes. The report itself is rendered by
//! `panda_model::advisor::flagship_report`, which a golden test pins to
//! the committed `results/advisor.txt`.

use panda_model::advisor::flagship_report;

fn main() {
    print!("{}", flagship_report());
}
