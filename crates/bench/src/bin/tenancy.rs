//! Multi-tenant request scheduling: N sessions submitting collective
//! writes to the same two I/O nodes, sequential (`max_concurrent = 1`,
//! every request queues behind the one live slot) vs. interleaved (the
//! request scheduler pumps up to 8 requests through the shared worker
//! pool and disk stage). Reports per-request latency percentiles and
//! aggregate throughput per cell; asserts the interleaved run's files
//! are byte-identical to the sequential run's for the same tenant
//! count before any number is reported.
//!
//! The disk is a throttled MemFs (the pipeline-depth profile's device
//! model) so the cells measure scheduling, not allocator noise: with a
//! real device cost, interleaving overlaps one tenant's fetch phase
//! with another's disk phase.
//!
//! Usage: `tenancy [--quick] [--out <path>]`. Writes one JSON object
//! per (mode, tenants) line to `<path>` (default
//! `results/BENCH_tenancy.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{ArrayMeta, PandaConfig, PandaSystem, Session, WriteSet};
use panda_fs::{FileSystem, MemFs, ThrottledFs};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const SERVERS: usize = 2;
/// Live-request slots in interleaved mode.
const INTERLEAVED_SLOTS: usize = 8;
const DISK_READ_MB_S: f64 = 200.0;
const DISK_WRITE_MB_S: f64 = 150.0;
const DISK_OP_OVERHEAD: Duration = Duration::from_micros(20);

/// Each tenant's array: single-node memory mesh (the session-mode
/// requirement), traditional order across the I/O nodes.
fn tenant_meta(rank: usize, rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, rows]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::U8, Mesh::new(&[1, 1]).unwrap()).unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::U8, SERVERS).unwrap();
    ArrayMeta::new(format!("t{rank}"), memory, disk).unwrap()
}

fn tenant_bytes(rank: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((rank.wrapping_mul(131).wrapping_add(i.wrapping_mul(7))) % 251) as u8 + 1)
        .collect()
}

struct Measurement {
    wall_s: f64,
    bytes: usize,
    /// Per-request submit-to-complete latencies, sorted ascending.
    latencies_s: Vec<f64>,
}

/// Run `tenants` sessions, each submitting `requests` collective
/// writes, with `max_concurrent` live-request slots on the servers.
/// Returns the measurement and the final bytes of every file.
fn run_cell(
    tenants: usize,
    requests: usize,
    rows: usize,
    max_concurrent: usize,
) -> (Measurement, Vec<(String, Vec<u8>)>) {
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let mut service = PandaSystem::builder()
        .config(
            PandaConfig::new(tenants, SERVERS)
                .with_subchunk_bytes(16 * 1024)
                .with_max_concurrent_collectives(max_concurrent)
                .with_max_queued_collectives(tenants)
                .with_recv_timeout(Duration::from_secs(60)),
        )
        .serve(move |s| {
            Arc::new(ThrottledFs::new(
                Arc::clone(&handles[s]) as Arc<dyn FileSystem>,
                DISK_READ_MB_S,
                DISK_WRITE_MB_S,
                DISK_OP_OVERHEAD,
            )) as Arc<dyn FileSystem>
        })
        .expect("launch tenancy service");

    let sessions: Vec<Session> = (0..tenants)
        .map(|_| service.open().expect("session slot"))
        .collect();

    let start = Instant::now();
    let (sessions, mut latencies_s) = std::thread::scope(|s| {
        let joins: Vec<_> = sessions
            .into_iter()
            .map(|mut sess| {
                s.spawn(move || {
                    let rank = sess.rank();
                    let meta = tenant_meta(rank, rows);
                    let data = tenant_bytes(rank, rows * rows);
                    let tag = format!("t{rank}");
                    let mut lats = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        sess.write_set(&WriteSet::new().array(&meta, tag.as_str(), &data))
                            .expect("tenant write");
                        lats.push(t0.elapsed().as_secs_f64());
                    }
                    (sess, lats)
                })
            })
            .collect();
        let mut sessions = Vec::new();
        let mut lats = Vec::new();
        for j in joins {
            let (sess, l) = j.join().unwrap();
            sessions.push(sess);
            lats.extend(l);
        }
        (sessions, lats)
    });
    let wall_s = start.elapsed().as_secs_f64();
    service.shutdown(sessions).expect("shutdown");

    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
    for (s, fs) in mems.iter().enumerate() {
        for name in fs.list() {
            files.push((format!("ionode{s}/{name}"), fs.contents(&name).unwrap()));
        }
    }
    files.sort();
    latencies_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        Measurement {
            wall_s,
            bytes: tenants * requests * rows * rows,
            latencies_s,
        },
        files,
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_line(mode: &str, tenants: usize, requests: usize, m: &Measurement) -> String {
    let mb_s = m.bytes as f64 / (1024.0 * 1024.0) / m.wall_s;
    JsonLine::new(&format!("tenancy/{mode}/n{tenants}"))
        .str("mode", mode)
        .usize("tenants", tenants)
        .usize("requests_per_tenant", requests)
        .usize("bytes", m.bytes)
        .f64("wall_s", m.wall_s)
        .f64("mb_s", mb_s)
        .f64("p50_ms", percentile(&m.latencies_s, 0.50) * 1e3)
        .f64("p99_ms", percentile(&m.latencies_s, 0.99) * 1e3)
        .finish()
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_tenancy.json", false);
    let tenant_counts: &[usize] = if opts.quick {
        &[4, 8]
    } else {
        &[8, 16, 32, 64]
    };
    let (requests, rows) = if opts.quick { (2, 32) } else { (4, 64) };

    println!(
        "request scheduler, {SERVERS} I/O nodes, throttled MemFs disk \
         ({DISK_WRITE_MB_S:.0} MB/s write, {:.0} us/op), \
         {requests} requests per tenant of {} B each:",
        DISK_OP_OVERHEAD.as_micros(),
        rows * rows
    );
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "mode", "tenants", "wall (s)", "MB/s", "p50 (ms)", "p99 (ms)"
    );

    let mut lines = Vec::new();
    for &tenants in tenant_counts {
        let (seq, seq_files) = run_cell(tenants, requests, rows, 1);
        let (conc, conc_files) = run_cell(tenants, requests, rows, INTERLEAVED_SLOTS);
        assert_eq!(
            seq_files, conc_files,
            "interleaving changed bytes on disk at {tenants} tenants"
        );
        for (mode, m) in [("sequential", &seq), ("interleaved", &conc)] {
            println!(
                "{:>12} {:>8} {:>10.4} {:>10.1} {:>10.2} {:>10.2}",
                mode,
                tenants,
                m.wall_s,
                m.bytes as f64 / (1024.0 * 1024.0) / m.wall_s,
                percentile(&m.latencies_s, 0.50) * 1e3,
                percentile(&m.latencies_s, 0.99) * 1e3,
            );
            lines.push(json_line(mode, tenants, requests, m));
        }
    }

    write_lines(&opts.out, &lines);
}
