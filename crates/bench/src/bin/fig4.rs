//! Regenerate Figure 4 of the paper.

fn main() {
    panda_bench::figure_main(4, "85-98% of peak AIX write throughput per i/o node");
}
