//! Regenerate Table 1: the NAS IBM SP2 system characteristics, with the
//! "measured" AIX file-system peaks re-derived from the calibrated cost
//! model exactly the way the paper measured them — reading/writing a
//! 32 MB and a 64 MB file with 1 MB requests and reporting throughput.

use panda_fs::aix::{IoDirection, MB};
use panda_model::Sp2Machine;

fn measured_peak(machine: &Sp2Machine, file_mb: usize, dir: IoDirection) -> f64 {
    // The paper's methodology: access a file of `file_mb` MB in 1 MB
    // requests; throughput = size / total time.
    let requests = file_mb;
    let total: f64 = (0..requests)
        .map(|_| machine.disk.access_time(1 << 20, dir))
        .sum();
    file_mb as f64 / total
}

fn main() {
    let m = Sp2Machine::nas_sp2();
    let rows: Vec<(&str, String)> = vec![
        ("Total number of nodes", "160 nodes".into()),
        ("Each node", "RS6000/590 workstation".into()),
        ("Each processor", "66.7 MHz, POWER2 multi-chip RISC".into()),
        ("Node operating system", "AIX operating system".into()),
        ("Total memory per node", "128 MB".into()),
        ("Total disk space per node", "2 GB".into()),
        (
            "High-performance switch bandwidth (hardware)",
            "40 MB/s, bidirectional".into(),
        ),
        (
            "Disk peak transfer rate",
            format!("{:.1} MB/s", m.disk.raw_bandwidth / MB),
        ),
        ("I/O bus", "SCSI".into()),
        ("I/O bus peak transfer rate", "10 MB/s".into()),
        ("Node file system block size", "4 KB".into()),
        (
            "Measured peak throughput for AIX file system reads (32 MB file)",
            format!("{:.2} MB/s", measured_peak(&m, 32, IoDirection::Read)),
        ),
        (
            "Measured peak throughput for AIX file system reads (64 MB file)",
            format!("{:.2} MB/s", measured_peak(&m, 64, IoDirection::Read)),
        ),
        (
            "Measured peak throughput for AIX file system writes (32 MB file)",
            format!("{:.2} MB/s", measured_peak(&m, 32, IoDirection::Write)),
        ),
        (
            "Measured peak throughput for AIX file system writes (64 MB file)",
            format!("{:.2} MB/s", measured_peak(&m, 64, IoDirection::Write)),
        ),
        (
            "NAS-measured message passing latency",
            format!("{:.0} microseconds", m.net.latency * 1e6),
        ),
        (
            "NAS-measured message passing bandwidth",
            format!("{:.0} MB/s", m.net.bandwidth / MB),
        ),
    ];
    println!("Table 1: The system characteristics of the NAS IBM SP2");
    println!("(static values quoted from the paper; measured values re-derived");
    println!(" from the calibrated cost model using the paper's methodology)");
    println!();
    for (k, v) in rows {
        println!("{k:<64} {v}");
    }
    println!();
    println!(
        "paper reference: 2.85 MB/s read peak, 2.23 MB/s write peak, 43 us / 34 MB/s messaging"
    );
}
