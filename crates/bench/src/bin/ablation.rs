//! Ablation study (not a paper figure; supported by the paper's §4
//! related-work comparison and its stated future work):
//!
//! 1. strategy: server-directed vs two-phase \[Bordawekar93\] vs naive
//!    client-directed I/O (the traditional-caching access pattern) —
//!    modeled elapsed time and seek counts on identical workloads;
//! 2. pipelining: subchunk pipeline depth 1 (blocking, the calibrated
//!    default) vs depth 2 (double buffering / the paper's "non-blocking
//!    communication" future work).

use panda_core::OpKind;
use panda_model::baseline_model::{model_naive, model_two_phase};
use panda_model::experiment::{paper_array, DiskKind};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};

fn main() {
    let machine = Sp2Machine::nas_sp2();
    let machine_depth2 = Sp2Machine::nas_sp2().with_pipeline_depth(2);

    println!("Ablation 1: I/O strategy (write, 8 compute nodes, 4 i/o nodes,");
    println!("traditional order on disk, real AIX-model disks)");
    println!();
    println!(
        "{:>10} {:>18} {:>14} {:>12} {:>10}",
        "array MB", "strategy", "elapsed (s)", "agg MB/s", "seeks"
    );
    for mb in [16usize, 64, 256] {
        let array = paper_array(mb, 8, 4, DiskKind::Traditional);
        let sd = simulate(
            &machine,
            &CollectiveSpec {
                arrays: vec![array.clone()],
                op: OpKind::Write,
                num_servers: 4,
                subchunk_bytes: 1 << 20,
                fast_disk: false,
                section: None,
            },
        );
        let tp = model_two_phase(&machine, &array, 4, OpKind::Write, 1 << 20);
        let nv = model_naive(&machine, &array, 4, OpKind::Write);
        println!(
            "{:>10} {:>18} {:>14.2} {:>12.2} {:>10}",
            mb, "server-directed", sd.elapsed, sd.aggregate_mbs, 0
        );
        println!(
            "{:>10} {:>18} {:>14.2} {:>12.2} {:>10}",
            mb, "two-phase", tp.elapsed, tp.aggregate_mbs, tp.seeks
        );
        println!(
            "{:>10} {:>18} {:>14.2} {:>12.2} {:>10}",
            mb, "naive", nv.elapsed, nv.aggregate_mbs, nv.seeks
        );
    }
    println!();
    println!("expected shape: naive loses badly (seek-bound small strided writes);");
    println!("two-phase and server-directed are comparable in time, but server-");
    println!("directed needs no chunk staging memory on compute nodes and zero seeks.");
    println!();

    println!("Ablation 2: subchunk pipeline depth (write, natural chunking,");
    println!("8 compute nodes, 4 i/o nodes)");
    println!();
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "array MB", "depth 1 (s)", "depth 2 (s)", "speedup"
    );
    for mb in [16usize, 64, 256] {
        let spec = CollectiveSpec {
            arrays: vec![paper_array(mb, 8, 4, DiskKind::Natural)],
            op: OpKind::Write,
            num_servers: 4,
            subchunk_bytes: 1 << 20,
            fast_disk: false,
            section: None,
        };
        let d1 = simulate(&machine, &spec);
        let d2 = simulate(&machine_depth2, &spec);
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>10.3}",
            mb,
            d1.elapsed,
            d2.elapsed,
            d1.elapsed / d2.elapsed
        );
    }
    println!();
    println!("expected shape: depth 2 hides the network phase behind the disk,");
    println!("approaching the pure AIX-peak bound (the paper's non-blocking-");
    println!("communication future work).");

    println!();
    println!("Ablation 3: subchunk size (write, natural chunking, 8/4 nodes, 64 MB)");
    println!();
    println!(
        "{:>14} {:>14} {:>12}",
        "subchunk", "elapsed (s)", "agg MB/s"
    );
    for cap_kb in [64usize, 256, 1024, 4096] {
        let spec = CollectiveSpec {
            arrays: vec![paper_array(64, 8, 4, DiskKind::Natural)],
            op: OpKind::Write,
            num_servers: 4,
            subchunk_bytes: cap_kb << 10,
            fast_disk: false,
            section: None,
        };
        let r = simulate(&machine, &spec);
        println!(
            "{:>14} {:>14.2} {:>12.2}",
            format!("{cap_kb} KB"),
            r.elapsed,
            r.aggregate_mbs
        );
    }
    println!();
    println!("expected shape: small subchunks lose to per-operation overheads (AIX");
    println!("small-write penalty); beyond ~1 MB returns diminish while buffer memory");
    println!("grows — the paper chose 1 MB after the same experiment.");
}
