//! Regenerate Figure 7 of the paper.

fn main() {
    panda_bench::figure_main(7, "68-95% of peak AIX read throughput per i/o node");
}
