//! Closed-loop tuning, measured: calibrate the cost model on each
//! backend profile (`calibrate_fleet` runs two short probe collectives
//! against the *real* runtime), then race the tuner's chosen operating
//! point against fixed pipeline depths at the paper's launch subchunk.
//! Every cell reports measured wall seconds, the analytical prediction
//! the search was based on, and the fitted machine replayed through the
//! discrete-event simulation — so the artifact shows both that tuning
//! wins and that the fitted model knew *why*.
//!
//! Usage: `tuner [--quick] [--out <path>]`. Writes one JSON object per
//! cell to `<path>` (default `results/BENCH_tuner.json`).

use std::sync::Arc;
use std::time::Instant;

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{
    ArrayMeta, OpKind, PandaClient, PandaConfig, PandaSystem, ReadSet, TunedConfig, WriteSet,
};
use panda_fs::{FileSystem, LocalFs, MemFs, ThrottledFs};
use panda_model::actors::{simulate, CollectiveSpec};
use panda_model::tuner::{calibrate_fleet, Calibration, TunerOptions};
use panda_obs::TimelineRecorder;
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
/// The deployment's launch-time subchunk cap — what every fixed-depth
/// cell runs with, and what the tuner is free to override.
const LAUNCH_SUBCHUNK: usize = 32 << 10;

fn make_array(rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, rows]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
    ArrayMeta::new("tuner", memory, disk).unwrap()
}

/// One backend profile the tuner is calibrated against.
struct Profile {
    name: &'static str,
    /// Throttled backends are deterministic: one rep is exact, and at
    /// AIX-era bandwidth extra reps are just wall-clock.
    deterministic: bool,
    make_fs: Box<dyn Fn(usize) -> Arc<dyn FileSystem>>,
}

fn profiles(root: &std::path::Path) -> Vec<Profile> {
    let local_root = root.to_path_buf();
    vec![
        Profile {
            name: "aix",
            deterministic: true,
            make_fs: Box::new(|_| {
                Arc::new(ThrottledFs::aix(Arc::new(MemFs::new()))) as Arc<dyn FileSystem>
            }),
        },
        Profile {
            name: "localfs",
            deterministic: false,
            make_fs: Box::new(move |s| {
                Arc::new(LocalFs::new(local_root.join(format!("s{s}"))).unwrap())
                    as Arc<dyn FileSystem>
            }),
        },
        Profile {
            name: "memfs",
            deterministic: false,
            make_fs: Box::new(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>),
        },
    ]
}

struct Cell {
    mode: String,
    cfg: TunedConfig,
    write_s: f64,
    read_s: f64,
}

impl Cell {
    fn wall_s(&self) -> f64 {
        self.write_s + self.read_s
    }
}

/// Run one write+read collective pair at `cfg`, `reps` times; keep the
/// fastest wall per direction (standard min-of-reps noise rejection).
fn measure(
    clients: &mut [PandaClient],
    meta: &ArrayMeta,
    cfg: &TunedConfig,
    reps: usize,
) -> (f64, f64) {
    // Every cell reuses one file tag, so the backend holds a single
    // file set all run long — accumulating an 8 MB file per cell would
    // shift cache pressure under the later cells.
    let tag = "cell";
    let datas: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|r| (0..meta.client_bytes(r)).map(|i| (i % 251) as u8).collect())
        .collect();
    let mut bufs: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|r| vec![0u8; meta.client_bytes(r)])
        .collect();
    let (mut write_s, mut read_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        std::thread::scope(|s| {
            for (client, data) in clients.iter_mut().zip(&datas) {
                s.spawn(move || {
                    client
                        .write_set(&WriteSet::new().array(meta, tag, data.as_slice()).tuned(cfg))
                        .unwrap()
                });
            }
        });
        write_s = write_s.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        std::thread::scope(|s| {
            for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
                s.spawn(move || {
                    client
                        .read_set(
                            &mut ReadSet::new()
                                .array(meta, tag, buf.as_mut_slice())
                                .tuned(cfg),
                        )
                        .unwrap()
                });
            }
        });
        read_s = read_s.min(start.elapsed().as_secs_f64());
    }
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &datas[r], "read-back mismatch");
    }
    (write_s, read_s)
}

/// Replay one cell on the fitted machine through the DES: write + read
/// elapsed at the cell's subchunk and depth.
fn sim_wall(cal: &Calibration, meta: &ArrayMeta, cfg: &TunedConfig) -> f64 {
    let machine = cal.fitted_machine().with_pipeline_depth(cfg.pipeline_depth);
    [OpKind::Write, OpKind::Read]
        .iter()
        .map(|&op| {
            simulate(
                &machine.clone(),
                &CollectiveSpec {
                    arrays: vec![meta.clone()],
                    op,
                    num_servers: SERVERS,
                    subchunk_bytes: cfg.subchunk_bytes,
                    fast_disk: false,
                    section: None,
                },
            )
            .elapsed
        })
        .sum()
}

fn run_profile(
    profile: &Profile,
    rows: usize,
    depths: &[usize],
    reps: usize,
    lines: &mut Vec<String>,
) {
    // Millisecond-scale cells drown in scheduling noise; fast backends
    // move a 4x bigger array so each cell is comfortably measurable,
    // while AIX-era bandwidth keeps the throttled profile affordable.
    let rows = if profile.deterministic {
        rows
    } else {
        rows * 2
    };
    let meta = &make_array(rows);
    let rec = Arc::new(TimelineRecorder::with_capacity(1 << 18));
    let config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(LAUNCH_SUBCHUNK)
        .with_recorder(rec);
    let workers = config.io_workers;
    let (system, mut clients) = PandaSystem::builder()
        .config(config)
        .launch(|s| (profile.make_fs)(s))
        .unwrap();

    let reps = if profile.deterministic { 1 } else { reps };
    println!(
        "{}: {} B array, {} rep(s) per cell",
        profile.name,
        meta.total_bytes(),
        reps
    );
    if !profile.deterministic {
        // Warm the backend and the runtime (page cache, allocator
        // pools, page tables) with untimed collectives so the probes
        // measure steady-state costs — the same regime the min-of-reps
        // cells run in. One pass is not enough: the system keeps
        // speeding up over the first few collectives.
        let warm = TunedConfig::new(LAUNCH_SUBCHUNK, 1, workers);
        measure(&mut clients, meta, &warm, 3);
    }

    // Calibrate against this backend. The depth and subchunk knobs ride
    // per-request overrides, but reorganization workers are fixed at
    // launch — so the online search is restricted to the launch value.
    let opts = TunerOptions {
        io_workers: vec![workers],
        // Probe the ends of the searched subchunk range: the wide lever
        // arm pins the per-op/per-byte split across the whole grid.
        probe_subchunk_bytes: (LAUNCH_SUBCHUNK, 1 << 20),
        // On noisy backends, fit the fastest of several probe reps —
        // the same regime the min-of-reps measurement cells report.
        probe_reps: reps,
        ..TunerOptions::default()
    };
    let cal = calibrate_fleet(&system, &mut clients, meta, &opts).unwrap();

    let mut cells: Vec<Cell> = Vec::new();
    for &depth in depths {
        let cfg = TunedConfig::new(LAUNCH_SUBCHUNK, depth, workers);
        let (write_s, read_s) = measure(&mut clients, meta, &cfg, reps);
        cells.push(Cell {
            mode: format!("fixed/depth{depth}"),
            cfg,
            write_s,
            read_s,
        });
    }
    let (write_s, read_s) = measure(&mut clients, meta, &cal.tuned, reps);
    cells.push(Cell {
        mode: "tuned".to_string(),
        cfg: cal.tuned,
        write_s,
        read_s,
    });

    println!(
        "{}: tuned = {} B subchunks, depth {} ({} candidates scored)",
        profile.name,
        cal.tuned.subchunk_bytes,
        cal.tuned.pipeline_depth,
        cal.candidates.len()
    );
    println!(
        "{:>14} {:>9} {:>6} {:>11} {:>11} {:>11} {:>8}",
        "cell", "subchunk", "depth", "wall (s)", "pred (s)", "sim (s)", "err"
    );
    for cell in &cells {
        let pred_write = cal.predict(
            meta,
            OpKind::Write,
            cell.cfg.subchunk_bytes,
            cell.cfg.pipeline_depth,
            workers,
        );
        let pred_read = cal.predict(
            meta,
            OpKind::Read,
            cell.cfg.subchunk_bytes,
            cell.cfg.pipeline_depth,
            workers,
        );
        let predicted = pred_write + pred_read;
        let sim_s = sim_wall(&cal, meta, &cell.cfg);
        let measured = cell.wall_s();
        let err = (predicted - measured).abs() / measured;
        println!(
            "{:>14} {:>9} {:>6} {:>11.4} {:>11.4} {:>11.4} {:>7.1}%",
            cell.mode,
            cell.cfg.subchunk_bytes,
            cell.cfg.pipeline_depth,
            measured,
            predicted,
            sim_s,
            err * 100.0
        );
        lines.push(
            JsonLine::new(&format!("tuner/{}/{}", profile.name, cell.mode))
                .str("profile", profile.name)
                .str("mode", &cell.mode)
                .usize("array_bytes", meta.total_bytes())
                .usize("subchunk_bytes", cell.cfg.subchunk_bytes)
                .usize("pipeline_depth", cell.cfg.pipeline_depth)
                .usize("io_workers", workers)
                .f64("measured_write_s", cell.write_s)
                .f64("measured_read_s", cell.read_s)
                .f64("measured_wall_s", measured)
                .f64("predicted_s", predicted)
                .f64("sim_s", sim_s)
                .f64("prediction_error", err)
                .finish(),
        );
    }
    println!();
    system.shutdown(clients).unwrap();
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_tuner.json", false);
    let rows = if opts.quick { 128 } else { 512 };
    let depths: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4] };
    let reps = if opts.quick { 2 } else { 7 };

    let root = std::env::temp_dir().join(format!("panda_tuner_{}", std::process::id()));
    println!(
        "Closed-loop tuning: {CLIENTS} clients x {SERVERS} I/O nodes, fixed cells \
         at {LAUNCH_SUBCHUNK} B subchunks vs the calibrated pick"
    );
    println!();
    let mut lines = Vec::new();
    for profile in profiles(&root) {
        run_profile(&profile, rows, depths, reps, &mut lines);
    }
    let _ = std::fs::remove_dir_all(&root);

    write_lines(&opts.out, &lines);
}
