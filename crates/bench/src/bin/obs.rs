//! The telemetry plane, measured: what does always-on observability
//! cost, and does drift detection actually close the tuning loop?
//!
//! Three sections, one committed artifact (`results/BENCH_obs.json`):
//!
//! 1. **Overhead** — the MemFs pipeline bench (same shape as
//!    `phases`: throttled MemFs disks, 4 clients x 2 I/O nodes) run
//!    under `NullRecorder`, `MetricsHub`, `TimelineRecorder`, and
//!    `FlightRecorder`; each cell reports min-of-reps wall seconds and
//!    overhead vs the null baseline. CI gates the hub at <= 3 %.
//! 2. **Drift** — a service calibrates on a fast backend, the backend
//!    is throttled mid-run (a `SwitchFs` flips between two
//!    `ThrottledFs` rates over one shared MemFs), the `DriftDetector`
//!    must fire on the live hub window, and the triggered auto-retune
//!    must recover >= 80 % of what a fresh manual calibration achieves
//!    on the slow backend.
//! 3. **Scrape** — the same service's `/metrics` and `/healthz` are
//!    fetched over real TCP and embedded in the artifact so CI can
//!    validate the Prometheus exposition parses.
//!
//! Usage: `obs [--quick] [--out <path>]`.

use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{ArrayMeta, PandaConfig, PandaSystem, ReadSet, Session, TunedConfig, WriteSet};
use panda_fs::{FileHandle, FileSystem, FsError, IoStats, MemFs, ThrottledFs};
use panda_model::drift::{service_drift_pass, DriftDetector};
use panda_model::tuner::{Calibrate, TunerOptions};
use panda_obs::{FanoutRecorder, FlightRecorder, MetricsHub, Recorder, TimelineRecorder};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
/// Fast-profile disk bandwidth (MB/s), as in the `phases` bench.
const FAST_MB_S: f64 = 600.0;
/// Throttled-down bandwidth for the drift scenario: 10x slower, so
/// the disk phase runs far off its calibrated cost line on every
/// window, not just on lucky draws.
const SLOW_MB_S: f64 = 60.0;

// ---------------------------------------------------------------------
// Section 1: recorder overhead on the MemFs pipeline bench.
// ---------------------------------------------------------------------

fn fleet_array(rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, rows]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
    ArrayMeta::new("obs", memory, disk).unwrap()
}

/// One freshly launched fleet with its recorder attached.
struct OverheadCell {
    name: &'static str,
    system: PandaSystem,
    clients: Vec<panda_core::PandaClient>,
}

fn make_cell(name: &'static str, recorder: Option<Arc<dyn Recorder>>) -> OverheadCell {
    let mut config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(4096)
        .with_pipeline_depth(2);
    if let Some(rec) = recorder {
        config = config.with_recorder(rec);
    }
    let (system, clients) = PandaSystem::builder()
        .config(config)
        .launch(|_| {
            Arc::new(ThrottledFs::new(
                Arc::new(MemFs::new()),
                FAST_MB_S,
                FAST_MB_S,
                Duration::from_micros(50),
            )) as Arc<dyn FileSystem>
        })
        .unwrap();
    OverheadCell {
        name,
        system,
        clients,
    }
}

/// One write+read collective pair across the fleet; wall seconds.
fn pipeline_rep(cell: &mut OverheadCell, meta: &ArrayMeta, datas: &[Vec<u8>]) -> f64 {
    let mut bufs: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|r| vec![0u8; meta.client_bytes(r)])
        .collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for (client, data) in cell.clients.iter_mut().zip(datas) {
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "obs", data.as_slice()))
                    .unwrap()
            });
        }
    });
    std::thread::scope(|s| {
        for (client, buf) in cell.clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().array(meta, "obs", buf.as_mut_slice()))
                    .unwrap()
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &datas[r], "read-back mismatch under {}", cell.name);
    }
    wall
}

fn overhead_section(quick: bool, lines: &mut Vec<String>) -> f64 {
    let meta = fleet_array(if quick { 192 } else { 256 });
    let reps = 15;
    let flight_dir = std::env::temp_dir().join(format!("panda-obs-bench-{}", std::process::id()));

    let hub = Arc::new(MetricsHub::new());
    let kinds: Vec<(&'static str, Option<Arc<dyn Recorder>>)> = vec![
        ("null", None),
        ("hub", Some(Arc::clone(&hub) as Arc<dyn Recorder>)),
        (
            "timeline",
            Some(Arc::new(TimelineRecorder::with_capacity(1 << 16)) as Arc<dyn Recorder>),
        ),
        (
            "flight",
            Some(Arc::new(FlightRecorder::new(&flight_dir)) as Arc<dyn Recorder>),
        ),
    ];
    let datas: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|r| (0..meta.client_bytes(r)).map(|i| (i % 251) as u8).collect())
        .collect();

    println!(
        "Recorder overhead: {} B array, {CLIENTS} clients x {SERVERS} I/O nodes, \
         throttled MemFs ({FAST_MB_S} MB/s), {reps} interleaved fresh-fleet reps per cell",
        meta.total_bytes()
    );
    // Noise defenses: every rep launches a *fresh* fleet so OS thread
    // placement is redrawn (a persistent fleet pins its server threads
    // once and repetition could never reject an unlucky placement),
    // each rep runs one untimed warm-up pair before the timed pair,
    // and the four recorder kinds are interleaved within each round so
    // slow machine-state drift (page cache, CPU clocks) hits every
    // recorder equally. Overhead is then scored *pairwise*: each round
    // yields one relative difference against that same round's null
    // run, and the median over rounds rejects the per-round sleep and
    // spawn jitter that a difference-of-minimums would keep.
    let mut walls = vec![Vec::with_capacity(reps); kinds.len()];
    for _rep in 0..reps {
        for (k, (name, recorder)) in kinds.iter().enumerate() {
            let mut cell = make_cell(name, recorder.clone());
            pipeline_rep(&mut cell, &meta, &datas);
            walls[k].push(pipeline_rep(&mut cell, &meta, &datas));
            cell.system.shutdown(cell.clients).unwrap();
        }
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };

    println!("{:>10} {:>11} {:>10}", "recorder", "wall (s)", "overhead");
    let mut hub_overhead_pct = f64::NAN;
    for (k, (name, _)) in kinds.iter().enumerate() {
        let wall = walls[k].iter().copied().fold(f64::INFINITY, f64::min);
        let overhead_pct = median(
            walls[k]
                .iter()
                .zip(&walls[0])
                .map(|(w, null)| (w - null) / null * 100.0)
                .collect(),
        );
        if *name == "hub" {
            hub_overhead_pct = overhead_pct;
        }
        println!("{name:>10} {wall:>11.5} {overhead_pct:>9.2}%");
        lines.push(
            JsonLine::new(&format!("obs/overhead/{name}"))
                .str("recorder", name)
                .usize("array_bytes", meta.total_bytes())
                .usize("reps", reps)
                .f64("wall_s", wall)
                .f64("overhead_pct", overhead_pct)
                .finish(),
        );
    }
    // The hub actually saw the runs it was attached to.
    let snap = hub.snapshot();
    assert!(
        snap.kind(panda_obs::EventKind::CollectiveDone).count > 0,
        "hub cell recorded nothing"
    );
    let _ = std::fs::remove_dir_all(&flight_dir);
    println!();
    hub_overhead_pct
}

// ---------------------------------------------------------------------
// Section 2: drift detection and auto-retune on a mid-run throttle.
// ---------------------------------------------------------------------

/// A file system whose backend can be swapped mid-run: new files land
/// on the fast or the slow profile depending on the switch, over one
/// shared MemFs — the bench's stand-in for "the shared disk got
/// busier".
struct SwitchFs {
    fast: Arc<dyn FileSystem>,
    slow: Arc<dyn FileSystem>,
    throttled: Arc<AtomicBool>,
}

impl SwitchFs {
    fn active(&self) -> &Arc<dyn FileSystem> {
        if self.throttled.load(Ordering::Relaxed) {
            &self.slow
        } else {
            &self.fast
        }
    }
}

impl FileSystem for SwitchFs {
    fn create(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        self.active().create(path)
    }

    fn open(&self, path: &str) -> Result<Box<dyn FileHandle>, FsError> {
        self.active().open(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.active().exists(path)
    }

    fn remove(&self, path: &str) -> Result<(), FsError> {
        self.active().remove(path)
    }

    fn list(&self) -> Vec<String> {
        self.active().list()
    }

    fn stats(&self) -> Arc<IoStats> {
        self.active().stats()
    }
}

fn solo_array(rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, rows]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[1, 1]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
    ArrayMeta::new("drift", memory, disk).unwrap()
}

/// One tenant write+read pair at `cfg`, fastest of `reps`.
fn session_wall(sess: &mut Session, meta: &ArrayMeta, cfg: &TunedConfig, reps: usize) -> f64 {
    let data: Vec<u8> = (0..meta.client_bytes(0)).map(|i| (i % 251) as u8).collect();
    let mut buf = vec![0u8; meta.client_bytes(0)];
    let mut wall = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        sess.write_set(&WriteSet::new().array(meta, "drift", &data).tuned(cfg))
            .unwrap();
        sess.read_set(&mut ReadSet::new().array(meta, "drift", &mut buf).tuned(cfg))
            .unwrap();
        wall = wall.min(start.elapsed().as_secs_f64());
    }
    assert_eq!(buf, data, "drift read-back mismatch");
    wall
}

fn drift_section(quick: bool, lines: &mut Vec<String>) -> (f64, u64, f64) {
    let rows = if quick { 128 } else { 256 };
    let reps = if quick { 3 } else { 5 };
    let meta = solo_array(rows);

    let mem = Arc::new(MemFs::new());
    let throttled = Arc::new(AtomicBool::new(false));
    let switch = Arc::clone(&throttled);
    let hub = Arc::new(MetricsHub::new());
    let recorder = Arc::new(FanoutRecorder::new(vec![
        Arc::new(TimelineRecorder::with_capacity(1 << 18)) as Arc<dyn Recorder>,
        Arc::clone(&hub) as Arc<dyn Recorder>,
    ]));
    let mut service = PandaSystem::builder()
        .config(
            PandaConfig::new(2, SERVERS)
                .with_recorder(recorder)
                .with_auto_retune(1.0)
                .with_recv_timeout(Duration::from_secs(30)),
        )
        .serve(move |_| {
            Arc::new(SwitchFs {
                fast: Arc::new(ThrottledFs::new(
                    Arc::clone(&mem) as Arc<dyn FileSystem>,
                    FAST_MB_S,
                    FAST_MB_S,
                    Duration::from_micros(50),
                )),
                slow: Arc::new(ThrottledFs::new(
                    Arc::clone(&mem) as Arc<dyn FileSystem>,
                    SLOW_MB_S,
                    SLOW_MB_S,
                    Duration::from_micros(50),
                )),
                throttled: Arc::clone(&switch),
            }) as Arc<dyn FileSystem>
        })
        .unwrap();

    let opts = TunerOptions::default();
    let cal_fast = service.calibrate(&meta, &opts).unwrap();
    let mut detector = DriftDetector::from_calibration(&cal_fast, 1.0);
    assert!(
        detector.begin_window(service.system().recorder().as_ref()),
        "service recorder must expose a MetricsHub"
    );

    let mut sess = service.open().unwrap();
    let fast_wall = session_wall(&mut sess, &meta, &cal_fast.tuned, reps);
    let on_model = detector
        .check(service.system().recorder().as_ref())
        .expect("hub attached");
    println!(
        "drift: fast backend wall {:.5} s (tuned {} B / depth {}), score {:.3}",
        fast_wall, cal_fast.tuned.subchunk_bytes, cal_fast.tuned.pipeline_depth, on_model.score
    );
    assert!(
        !on_model.drifted,
        "on-model traffic must not trip the detector (score {:.3})",
        on_model.score
    );
    lines.push(
        JsonLine::new("obs/drift/baseline")
            .usize("array_bytes", meta.total_bytes())
            .f64("wall_s", fast_wall)
            .f64("drift_score", on_model.score)
            .u64("drifted", u64::from(on_model.drifted))
            .finish(),
    );

    // Throttle the backend mid-run and watch a fresh window.
    throttled.store(true, Ordering::Relaxed);
    detector.begin_window(service.system().recorder().as_ref());
    let stale_wall = session_wall(&mut sess, &meta, &cal_fast.tuned, reps);
    service.close(sess);

    // One detector pass: it must fire, and the service's auto-retune
    // opt-in recalibrates on the now-slow backend.
    let pass = service_drift_pass(&mut detector, &mut service, &meta, &opts).unwrap();
    let report = pass.report.expect("hub attached");
    assert!(
        report.drifted,
        "throttled backend must trip the detector (score {:.3})",
        report.score
    );
    let cal_retuned = pass
        .recalibrated
        .expect("auto-retune opt-in must recalibrate once drift fires");
    let worst = report.worst().expect("a phase drove the score");
    println!(
        "drift: throttled wall {:.5} s, score {:.3} on {:?} ({} ops), auto-retuned to {} B / depth {}",
        stale_wall,
        report.score,
        worst.phase,
        worst.ops,
        cal_retuned.tuned.subchunk_bytes,
        cal_retuned.tuned.pipeline_depth
    );
    lines.push(
        JsonLine::new("obs/drift/throttled")
            .f64("wall_s", stale_wall)
            .f64("drift_score", report.score)
            .u64("drifted", u64::from(report.drifted))
            .str("worst_phase", worst.phase.label())
            .f64("worst_measured_s", worst.measured_s)
            .f64("worst_predicted_s", worst.predicted_s)
            .finish(),
    );

    // Race the triggered retune against a fresh manual calibration on
    // the slow backend: the acceptance bar is >= 80 % of manual
    // throughput.
    let cal_manual = service.calibrate(&meta, &opts).unwrap();
    let mut sess = service.open().unwrap();
    let retuned_wall = session_wall(&mut sess, &meta, &cal_retuned.tuned, reps);
    let manual_wall = session_wall(&mut sess, &meta, &cal_manual.tuned, reps);
    let recovery = manual_wall / retuned_wall;
    println!(
        "drift: retuned wall {retuned_wall:.5} s vs fresh-manual {manual_wall:.5} s \
         (recovery {:.1} %)",
        recovery * 100.0
    );
    lines.push(
        JsonLine::new("obs/drift/retuned")
            .f64("wall_s", retuned_wall)
            .usize("subchunk_bytes", cal_retuned.tuned.subchunk_bytes)
            .usize("pipeline_depth", cal_retuned.tuned.pipeline_depth)
            .f64("recovery_vs_manual", recovery)
            .finish(),
    );
    lines.push(
        JsonLine::new("obs/drift/manual")
            .f64("wall_s", manual_wall)
            .usize("subchunk_bytes", cal_manual.tuned.subchunk_bytes)
            .usize("pipeline_depth", cal_manual.tuned.pipeline_depth)
            .finish(),
    );

    // Section 3 rides the same live service: scrape it over real TCP.
    let scrape = service
        .serve_metrics("127.0.0.1:0")
        .expect("bind scrape listener");
    let (metrics_head, metrics_body) = http_get(scrape.addr(), "/metrics");
    let (health_head, health_body) = http_get(scrape.addr(), "/healthz");
    assert!(metrics_head.starts_with("HTTP/1.1 200"), "{metrics_head}");
    assert!(health_head.starts_with("HTTP/1.1 200"), "{health_head}");
    assert!(metrics_body.contains("panda_events_total"));
    assert!(metrics_body.contains("panda_health_status"));
    assert!(health_body.contains("\"status\":\"ok\""));
    println!(
        "scrape: /metrics {} lines, /healthz {}",
        metrics_body.lines().count(),
        health_body
    );
    lines.push(
        JsonLine::new("obs/scrape")
            .usize("metrics_lines", metrics_body.lines().count())
            .str("metrics_text", &metrics_body)
            .raw("healthz", &health_body)
            .finish(),
    );
    scrape.stop();
    println!();

    service.shutdown(vec![sess]).unwrap();
    (report.score, u64::from(report.drifted), recovery)
}

/// One plain HTTP GET; returns (head, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape listener");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_obs.json", false);
    let mut lines = Vec::new();

    let hub_overhead_pct = overhead_section(opts.quick, &mut lines);
    let (score, drifted, recovery) = drift_section(opts.quick, &mut lines);

    println!(
        "summary: hub overhead {hub_overhead_pct:.2} %, drift score {score:.3} \
         (fired: {}), retune recovery {:.1} %",
        drifted == 1,
        recovery * 100.0
    );
    write_lines(&opts.out, &lines);
}
