//! Regenerate Figure 6 of the paper.

fn main() {
    panda_bench::figure_main(
        6,
        "~90% of peak MPI bandwidth, declining at small sizes (startup)",
    );
}
