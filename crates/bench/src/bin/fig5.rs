//! Regenerate Figure 5 of the paper.

fn main() {
    panda_bench::figure_main(
        5,
        "~90% of peak MPI bandwidth, declining at small sizes (startup)",
    );
}
