//! Raw disk-stage throughput: LocalFs vs. the submission-queue SubmitFs
//! backend, unthrottled, across pipeline depths and sync policies. This
//! is the profile behind DESIGN.md §12 — no simulated disk, no
//! bandwidth cap, just the real filesystem under the collective write
//! path, so the numbers show what the submission queue and coalesced
//! fsync buy on actual hardware.
//!
//! Each cell writes `STEPS` timesteps of the 4-array group and reports
//! MB/s over the bytes landed. Every run's files are asserted
//! byte-identical to the first run's before any number is reported.
//!
//! Usage: `disk [--quick] [--out <path>]`. Writes one JSON object per
//! (backend, sync, depth) line to `<path>` (default
//! `results/BENCH_disk.json`).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{ArrayGroup, ArrayMeta, GroupData, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, LocalFs, SubmitFs, SyncPolicy};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
/// Completion threads per SubmitFs instance (recorded in the JSON).
const THREADS: usize = 2;

/// The same 4-array simulation group as the group bench.
fn group(rows: usize) -> ArrayGroup {
    let arr = |name: &str| -> ArrayMeta {
        let shape = Shape::new(&[rows, rows]).unwrap();
        let memory =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
        ArrayMeta::new(name, memory, disk).unwrap()
    };
    let mut g = ArrayGroup::new("bench");
    g.include(arr("temperature"))
        .include(arr("pressure"))
        .include(arr("density"))
        .include(arr("energy"));
    g
}

fn fill_pattern(data: &mut GroupData, rank: usize) {
    for i in 0..data.len() {
        for (j, b) in data.buffer_mut(i).iter_mut().enumerate() {
            *b = ((rank * 131 + i * 31 + j * 7) % 251) as u8 + 1;
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    LocalFs,
    SubmitFs,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::LocalFs => "localfs",
            Backend::SubmitFs => "submitfs",
        }
    }
}

struct Cell {
    backend: Backend,
    sync: SyncPolicy,
    depth: usize,
}

struct Measurement {
    wall_s: f64,
    bytes: usize,
}

/// Write `steps` group timesteps through `backend` under `root` and
/// time the whole sequence.
fn run_cell(rows: usize, steps: usize, cell: &Cell, root: &Path) -> Measurement {
    let roots: Vec<PathBuf> = (0..SERVERS)
        .map(|s| root.join(format!("ionode{s}")))
        .collect();
    let backend = cell.backend;
    let config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(16 * 1024)
        .with_pipeline_depth(cell.depth)
        .with_sync_policy(cell.sync)
        .with_disk_completion_threads(THREADS);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(move |s| match backend {
            Backend::LocalFs => Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>,
            Backend::SubmitFs => {
                Arc::new(SubmitFs::new(&roots[s], THREADS).unwrap()) as Arc<dyn FileSystem>
            }
        })
        .unwrap();

    let start = Instant::now();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            s.spawn(move || {
                let mut g = group(rows);
                let rank = client.rank();
                let mut data = GroupData::zeroed(&g, rank);
                fill_pattern(&mut data, rank);
                for _ in 0..steps {
                    g.timestep(client, &data.slices()).unwrap();
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    system.shutdown(clients).unwrap();

    Measurement {
        wall_s,
        bytes: steps * 4 * rows * rows * 8,
    }
}

/// All files written under `root`, sorted by relative path.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for s in 0..SERVERS {
        let dir = root.join(format!("ionode{s}/bench"));
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        for name in names {
            out.push((
                format!("ionode{s}/bench/{name}"),
                std::fs::read(dir.join(&name)).unwrap(),
            ));
        }
    }
    out
}

fn json_line(cell: &Cell, m: &Measurement) -> String {
    let mb_s = m.bytes as f64 / (1024.0 * 1024.0) / m.wall_s;
    JsonLine::new(&format!(
        "disk/{}/{}/depth{}",
        cell.backend.name(),
        cell.sync.name(),
        cell.depth
    ))
    .str("backend", cell.backend.name())
    .str("sync", cell.sync.name())
    .usize("depth", cell.depth)
    .usize("threads", THREADS)
    .usize("bytes", m.bytes)
    .f64("wall_s", m.wall_s)
    .f64("mb_s", mb_s)
    .finish()
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_disk.json", false);
    let (rows, steps) = if opts.quick { (64, 2) } else { (512, 8) };
    let cells: Vec<Cell> = {
        let mut cells = Vec::new();
        for backend in [Backend::LocalFs, Backend::SubmitFs] {
            // Paper semantics: fsync after every write (depth 1 only —
            // the config rejects per-write sync with a deeper pipeline).
            cells.push(Cell {
                backend,
                sync: SyncPolicy::PerWrite,
                depth: 1,
            });
            let depths: &[usize] = if opts.quick { &[2] } else { &[1, 2, 4] };
            for &depth in depths {
                cells.push(Cell {
                    backend,
                    sync: SyncPolicy::PerFile,
                    depth,
                });
                cells.push(Cell {
                    backend,
                    sync: SyncPolicy::PerCollective,
                    depth,
                });
            }
        }
        cells
    };
    let scratch = std::env::temp_dir().join(format!("panda-disk-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut reference: Option<Vec<(String, Vec<u8>)>> = None;
    let mut results: Vec<(usize, Measurement)> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let root = scratch.join(format!("run{i}"));
        let m = run_cell(rows, steps, cell, &root);
        // Neither the backend, the sync policy, nor the depth may change
        // the bytes on disk.
        let snap = snapshot(&root);
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(
                r,
                &snap,
                "{}/{}/depth{} changed bytes on disk",
                cell.backend.name(),
                cell.sync.name(),
                cell.depth
            ),
        }
        let _ = std::fs::remove_dir_all(&root);
        results.push((i, m));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "disk stage, unthrottled ({} timesteps x 4 arrays x {} B), \
         {CLIENTS} clients x {SERVERS} I/O nodes, {THREADS} completion threads:",
        steps,
        rows * rows * 8
    );
    println!(
        "{:>9} {:>15} {:>6} {:>10} {:>10}",
        "backend", "sync", "depth", "wall (s)", "MB/s"
    );
    for (i, m) in &results {
        let cell = &cells[*i];
        println!(
            "{:>9} {:>15} {:>6} {:>10.4} {:>10.1}",
            cell.backend.name(),
            cell.sync.name(),
            cell.depth,
            m.wall_s,
            m.bytes as f64 / (1024.0 * 1024.0) / m.wall_s
        );
    }

    let lines: Vec<String> = results
        .iter()
        .map(|(i, m)| json_line(&cells[*i], m))
        .collect();
    write_lines(&opts.out, &lines);
}
