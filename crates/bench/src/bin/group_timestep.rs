//! Group-concurrent vs. sequential array-group timesteps, measured on
//! the real runtime: a 4-array group written either as one batched
//! collective (`ArrayGroup::timestep`, the server interleaves all four
//! arrays through one pipeline window) or as four back-to-back
//! single-array collectives (the pipeline drains at every array
//! boundary). Disks are `ThrottledFs` over `LocalFs`, so both disk
//! bandwidth and real fsync costs are on the critical path the way the
//! paper's AIX measurements were.
//!
//! Usage: `group_timestep [--quick] [--csv] [--out <path>]`. Writes one
//! JSON object per (mode, depth) line to `<path>` (default
//! `results/BENCH_group.json`), each embedding the full machine-readable
//! run report. The two modes' output files are asserted byte-identical
//! at every depth before any number is reported.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{ArrayGroup, ArrayMeta, GroupData, PandaConfig, PandaSystem, WriteSet};
use panda_fs::{FileSystem, LocalFs, ThrottledFs};
use panda_obs::{Phase, RunReport, TimelineRecorder};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
/// Throttled disk bandwidth (MB/s) and per-op overhead: slow enough
/// that disk time dominates and overlap is measurable, fast enough for
/// a CI smoke run.
const DISK_MB_S: f64 = 300.0;
const OP_OVERHEAD_US: u64 = 100;

/// The paper's Figure 2 cast: a 4-array simulation group.
fn group(rows: usize) -> ArrayGroup {
    let arr = |name: &str| -> ArrayMeta {
        let shape = Shape::new(&[rows, rows]).unwrap();
        let memory =
            DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
                .unwrap();
        let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
        ArrayMeta::new(name, memory, disk).unwrap()
    };
    let mut g = ArrayGroup::new("bench");
    g.include(arr("temperature"))
        .include(arr("pressure"))
        .include(arr("density"))
        .include(arr("energy"));
    g
}

fn fill_pattern(data: &mut GroupData, rank: usize) {
    for i in 0..data.len() {
        for (j, b) in data.buffer_mut(i).iter_mut().enumerate() {
            *b = ((rank * 131 + i * 31 + j * 7) % 251) as u8 + 1;
        }
    }
}

struct ModeRun {
    wall_s: f64,
    report: RunReport,
}

/// One group timestep at `depth`, batched (`concurrent`) or one
/// collective per array (`sequential`), on fresh throttled local disks
/// under `root`. Returns the measurement and leaves the files on disk
/// for the byte-identity check.
fn run_mode(rows: usize, depth: usize, concurrent: bool, root: &Path) -> ModeRun {
    let rec = Arc::new(TimelineRecorder::with_capacity(1 << 16));
    let roots: Vec<PathBuf> = (0..SERVERS)
        .map(|s| root.join(format!("ionode{s}")))
        .collect();
    let config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(16 * 1024)
        .with_pipeline_depth(depth)
        .with_recorder(rec.clone());
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(move |s| {
            Arc::new(ThrottledFs::new(
                Arc::new(LocalFs::new(&roots[s]).unwrap()),
                DISK_MB_S,
                DISK_MB_S,
                std::time::Duration::from_micros(OP_OVERHEAD_US),
            )) as Arc<dyn FileSystem>
        })
        .unwrap();

    let start = Instant::now();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            s.spawn(move || {
                let mut g = group(rows);
                let rank = client.rank();
                let mut data = GroupData::zeroed(&g, rank);
                fill_pattern(&mut data, rank);
                if concurrent {
                    // One batched request: the server flattens all four
                    // arrays through a single pipeline window.
                    g.timestep(client, &data.slices()).unwrap();
                } else {
                    // Four separate collectives with the same file tags:
                    // the pipeline drains at every array boundary.
                    let arrays: Vec<ArrayMeta> = g.arrays().to_vec();
                    for (i, meta) in arrays.iter().enumerate() {
                        let tag = g.timestep_tag(i, 0);
                        client
                            .write_set(&WriteSet::new().array(meta, tag.as_str(), data.buffer(i)))
                            .unwrap();
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();

    let report = system.report();
    system.shutdown(clients).unwrap();
    assert_eq!(report.dropped_events, 0, "timeline ring overflowed");
    ModeRun { wall_s, report }
}

/// All files written under `root`, sorted by relative path.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for s in 0..SERVERS {
        let dir = root.join(format!("ionode{s}/bench"));
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        for name in names {
            out.push((
                format!("ionode{s}/bench/{name}"),
                std::fs::read(dir.join(&name)).unwrap(),
            ));
        }
    }
    out
}

struct DepthResult {
    depth: usize,
    seq: ModeRun,
    conc: ModeRun,
}

fn json_line(rows: usize, mode: &str, depth: usize, run: &ModeRun) -> String {
    JsonLine::new(&format!("group_timestep/{mode}/depth{depth}"))
        .usize("arrays", 4)
        .usize("array_bytes", rows * rows * 8)
        .f64("measured_wall_s", run.wall_s)
        .f64("cross_array_overlap_s", run.report.cross_array_overlap_s)
        .raw("report", &run.report.to_json())
        .finish()
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_group.json", true);
    let rows = if opts.quick { 64 } else { 256 };
    let depths: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4] };
    let scratch = std::env::temp_dir().join(format!("panda-group-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let results: Vec<DepthResult> = depths
        .iter()
        .map(|&depth| {
            let seq_root = scratch.join(format!("seq-d{depth}"));
            let conc_root = scratch.join(format!("conc-d{depth}"));
            let seq = run_mode(rows, depth, false, &seq_root);
            let conc = run_mode(rows, depth, true, &conc_root);
            // Concurrency must never change the bytes on disk.
            assert_eq!(
                snapshot(&seq_root),
                snapshot(&conc_root),
                "group-concurrent depth {depth} changed bytes on disk"
            );
            DepthResult { depth, seq, conc }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&scratch);

    if opts.csv {
        println!("depth,seq_wall_s,conc_wall_s,speedup,cross_array_overlap_s");
        for r in &results {
            println!(
                "{},{:.6},{:.6},{:.4},{:.6}",
                r.depth,
                r.seq.wall_s,
                r.conc.wall_s,
                r.seq.wall_s / r.conc.wall_s,
                r.conc.report.cross_array_overlap_s,
            );
        }
    } else {
        println!(
            "4-array group timestep ({} B/array), {CLIENTS} clients x {SERVERS} I/O nodes, \
             throttled LocalFs ({DISK_MB_S} MB/s + {OP_OVERHEAD_US} us/op):",
            rows * rows * 8
        );
        println!(
            "{:>6} {:>12} {:>12} {:>9} {:>14} {:>10}",
            "depth", "seq (s)", "conc (s)", "speedup", "x-overlap (s)", "disk (s)"
        );
        for r in &results {
            println!(
                "{:>6} {:>12.4} {:>12.4} {:>8.2}x {:>14.4} {:>10.4}",
                r.depth,
                r.seq.wall_s,
                r.conc.wall_s,
                r.seq.wall_s / r.conc.wall_s,
                r.conc.report.cross_array_overlap_s,
                r.conc.report.phases.get(Phase::Disk),
            );
        }
        println!();
        println!(
            "(seq = one collective per array; conc = one batched request — the \
             server interleaves all arrays through one depth-d window, so \
             x-overlap, the time different arrays' work overlapped on the same \
             node, is nonzero only at depth >= 2)"
        );
    }

    let mut lines = Vec::new();
    for r in &results {
        lines.push(json_line(rows, "sequential", r.depth, &r.seq));
        lines.push(json_line(rows, "concurrent", r.depth, &r.conc));
    }
    write_lines(&opts.out, &lines);
}
