//! Regenerate Figure 9 of the paper.

fn main() {
    panda_bench::figure_main(
        9,
        "38-86% of peak MPI bandwidth (reorganization cost visible)",
    );
}
