//! Regenerate Figure 8 of the paper.

fn main() {
    panda_bench::figure_main(8, "68-95% of peak AIX write throughput per i/o node");
}
