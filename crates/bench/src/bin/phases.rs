//! Fig 5-style phase decomposition from *real measurements*: run the
//! actual runtime (inproc transport, throttled MemFs disks) under a
//! `TimelineRecorder` and print where the time went — client exchange,
//! disk, reorganization — per pipeline depth, the way the paper's §4
//! discussion breaks down Figure 5/6.
//!
//! Usage: `phases [--quick] [--csv] [--out <path>]`. Writes one JSON
//! object per (depth, op) line to `<path>` (default
//! `results/BENCH_phases.json`), each embedding the full
//! machine-readable run report.

use std::sync::Arc;
use std::time::Instant;

use panda_bench::report::{write_lines, BenchOpts, JsonLine};
use panda_core::{ArrayMeta, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs, ThrottledFs};
use panda_obs::{Phase, RunReport, TimelineRecorder};
use panda_schema::copy::offset_in_region;
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
/// Throttled disk bandwidth (MB/s). Slow enough that disk time is the
/// dominant, clearly measurable phase; fast enough for a CI smoke run.
const DISK_MB_S: f64 = 600.0;

fn make_array(rows: usize) -> ArrayMeta {
    let shape = Shape::new(&[rows, rows]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
    ArrayMeta::new("phases", memory, disk).unwrap()
}

fn pattern_chunk(meta: &ArrayMeta, rank: usize) -> Vec<u8> {
    let elem = meta.elem_size();
    let region = meta.client_region(rank);
    let mut out = vec![0u8; meta.client_bytes(rank)];
    if let Some(shape) = region.shape() {
        for local in shape.iter_indices() {
            let global: Vec<usize> = local
                .iter()
                .zip(region.lo())
                .map(|(&l, &o)| l + o)
                .collect();
            let lin = meta.shape().linearize(&global);
            let off = offset_in_region(&region, &global, elem);
            for b in 0..elem {
                out[off + b] = ((lin * 31 + b * 7) % 251) as u8 + 1;
            }
        }
    }
    out
}

struct DepthRun {
    depth: usize,
    wall_s: f64,
    report: RunReport,
}

/// One collective write + read at `depth`, measured end to end.
fn run_depth(meta: &ArrayMeta, depth: usize) -> DepthRun {
    let rec = Arc::new(TimelineRecorder::with_capacity(1 << 16));
    let config = PandaConfig::new(CLIENTS, SERVERS)
        .with_subchunk_bytes(4096)
        .with_pipeline_depth(depth)
        .with_recorder(rec.clone());
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| {
            Arc::new(ThrottledFs::new(
                Arc::new(MemFs::new()),
                DISK_MB_S,
                DISK_MB_S,
                std::time::Duration::from_micros(50),
            )) as Arc<dyn FileSystem>
        })
        .unwrap();

    let datas: Vec<Vec<u8>> = (0..CLIENTS).map(|r| pattern_chunk(meta, r)).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "phases", data.as_slice()))
                    .unwrap()
            });
        }
    });
    let mut bufs: Vec<Vec<u8>> = (0..CLIENTS)
        .map(|r| vec![0u8; meta.client_bytes(r)])
        .collect();
    std::thread::scope(|s| {
        for (client, buf) in clients.iter_mut().zip(bufs.iter_mut()) {
            s.spawn(move || {
                client
                    .read_set(&mut ReadSet::new().array(meta, "phases", buf.as_mut_slice()))
                    .unwrap()
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    for (r, buf) in bufs.iter().enumerate() {
        assert_eq!(buf, &datas[r], "read-back mismatch at depth {depth}");
    }

    let report = system.report();
    system.shutdown(clients).unwrap();
    assert_eq!(report.dropped_events, 0, "timeline ring overflowed");
    DepthRun {
        depth,
        wall_s,
        report,
    }
}

fn json_line(meta: &ArrayMeta, run: &DepthRun) -> String {
    JsonLine::new(&format!("phases/write_read/depth{}", run.depth))
        .usize("array_bytes", meta.total_bytes())
        .f64("measured_wall_s", run.wall_s)
        .raw("report", &run.report.to_json())
        .finish()
}

fn main() {
    let opts = BenchOpts::parse("results/BENCH_phases.json", true);
    let meta = make_array(if opts.quick { 64 } else { 256 });
    let depths: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4, 8] };

    let runs: Vec<DepthRun> = depths.iter().map(|&d| run_depth(&meta, d)).collect();

    if opts.csv {
        println!("depth,wall_s,exchange_s,disk_s,reorg_s,throttle_s");
        for r in &runs {
            println!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                r.depth,
                r.wall_s,
                r.report.phases.get(Phase::Exchange),
                r.report.phases.get(Phase::Disk),
                r.report.phases.get(Phase::Reorg),
                r.report.phases.get(Phase::Throttle),
            );
        }
    } else {
        println!(
            "Phase decomposition, {} B array, {CLIENTS} clients x {SERVERS} I/O nodes, \
             throttled MemFs ({DISK_MB_S} MB/s):",
            meta.total_bytes()
        );
        println!(
            "{:>6} {:>10} {:>11} {:>9} {:>9} {:>11} {:>10}",
            "depth", "wall (s)", "exchange", "disk", "reorg", "disk+exch", "subchunks"
        );
        for r in &runs {
            let ex = r.report.phases.get(Phase::Exchange);
            let disk = r.report.phases.get(Phase::Disk);
            let reorg = r.report.phases.get(Phase::Reorg);
            println!(
                "{:>6} {:>10.4} {:>11.4} {:>9.4} {:>9.4} {:>10.0}% {:>10}",
                r.depth,
                r.wall_s,
                ex,
                disk,
                reorg,
                (ex + disk) / r.wall_s * 100.0,
                r.report.per_subchunk.len()
            );
        }
        println!();
        println!(
            "(disk+exch > 100% of wall means work overlapped: across the \
             {SERVERS} I/O nodes, and — at depth > 1 — between each node's \
             disk and exchange, the paper's §3.3 motivation for pipelining)"
        );
    }

    let lines: Vec<String> = runs.iter().map(|r| json_line(&meta, r)).collect();
    write_lines(&opts.out, &lines);
}
