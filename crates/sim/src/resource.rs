//! FIFO resources with utilization accounting.
//!
//! A [`Resource`] models an exclusive serial device — a NIC port, a disk,
//! a CPU — as a timeline: requests reserve the earliest interval starting
//! no earlier than their ready time and no earlier than the end of the
//! previously granted interval. When requests are issued in nondecreasing
//! ready order (which a time-ordered event loop guarantees), this is
//! exactly FIFO queueing.

use crate::engine::SimTime;

/// An exclusive serial device.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    free_at: SimTime,
    busy_time: SimTime,
    grants: u64,
    label: String,
}

impl Resource {
    /// A fresh idle resource with a diagnostic label.
    pub fn new(label: impl Into<String>) -> Self {
        Resource {
            free_at: 0,
            busy_time: 0,
            grants: 0,
            label: label.into(),
        }
    }

    /// Reserve the device for `duration` starting no earlier than
    /// `ready`. Returns the granted `(start, end)` interval.
    pub fn acquire(&mut self, ready: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = ready.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy_time += duration;
        self.grants += 1;
        (start, end)
    }

    /// Earliest time a new request could start service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time granted.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Number of grants made.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Busy fraction over `[0, horizon]`; 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_time as f64 / horizon as f64
        }
    }

    /// The diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_fifo_and_work_conserving() {
        let mut r = Resource::new("disk0");
        // Immediate grant when idle.
        assert_eq!(r.acquire(0, 10), (0, 10));
        // Back-to-back requests queue.
        assert_eq!(r.acquire(0, 5), (10, 15));
        // A request arriving after the queue drains starts on arrival.
        assert_eq!(r.acquire(100, 1), (100, 101));
        assert_eq!(r.free_at(), 101);
        assert_eq!(r.grants(), 3);
        assert_eq!(r.busy_time(), 16);
    }

    #[test]
    fn utilization() {
        let mut r = Resource::new("nic");
        r.acquire(0, 25);
        r.acquire(50, 25);
        assert!((r.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(0), 0.0);
    }

    #[test]
    fn zero_duration_grants_are_instant() {
        let mut r = Resource::new("cpu");
        assert_eq!(r.acquire(5, 0), (5, 5));
        assert_eq!(r.busy_time(), 0);
        assert_eq!(r.grants(), 1);
    }

    #[test]
    fn serial_saturation_matches_sum_of_durations() {
        let mut r = Resource::new("disk");
        let mut expected_end = 0;
        for d in [3u64, 7, 11, 2, 9] {
            let (_, end) = r.acquire(0, d);
            expected_end += d;
            assert_eq!(end, expected_end);
        }
    }
}
