//! # panda-sim — deterministic discrete-event simulation engine
//!
//! The Panda paper evaluates elapsed wall-clock time on a 160-node IBM
//! SP2. The reproduction cannot time-travel to 1995 hardware, so the
//! performance harness replays the *real* Panda planner's schedule of
//! messages, memory copies, and disk accesses through a calibrated cost
//! model. This crate is the engine underneath: a small, fully
//! deterministic discrete-event simulator with
//!
//! * a virtual clock in nanoseconds ([`SimTime`]),
//! * an event heap with strict FIFO tie-breaking ([`Engine`]) so runs are
//!   bit-for-bit reproducible,
//! * typed actors with shared mutable world state ([`Actor`],
//!   [`Context`]), and
//! * FIFO [`Resource`]s (NIC ports, disks, CPUs) with utilization
//!   accounting.
//!
//! The engine is generic and contains no Panda specifics; `panda-model`
//! builds the SP2 machine model on top of it.

#![warn(missing_docs)]

pub mod engine;
pub mod resource;

pub use engine::{Actor, ActorId, Context, Engine, SimTime};
pub use resource::Resource;

/// Convert seconds (f64) to [`SimTime`] nanoseconds, rounding.
#[inline]
pub fn secs_to_ns(s: f64) -> SimTime {
    (s * 1e9).round() as SimTime
}

/// Convert [`SimTime`] nanoseconds to seconds.
#[inline]
pub fn ns_to_secs(t: SimTime) -> f64 {
    t as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert!((ns_to_secs(2_000_000_000) - 2.0).abs() < 1e-12);
        assert_eq!(secs_to_ns(ns_to_secs(123_456_789)), 123_456_789);
    }
}
