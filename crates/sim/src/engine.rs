//! The event loop: actors, events, and the virtual clock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds since simulation start.
pub type SimTime = u64;

/// Identifies an actor registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub usize);

/// A simulation participant.
///
/// `M` is the event/message type, `S` the world state shared by all
/// actors (machine resources, collected metrics, ...). Actors receive
/// events strictly in time order; ties are broken by scheduling order,
/// which makes whole simulations deterministic.
pub trait Actor<M, S> {
    /// Handle one event delivered at `ctx.now()`.
    fn handle(&mut self, event: M, ctx: &mut Context<'_, M, S>);
}

/// The actor's view of the engine during an event callback.
pub struct Context<'a, M, S> {
    now: SimTime,
    self_id: ActorId,
    /// Shared world state (resources, metrics).
    pub state: &'a mut S,
    outbox: Vec<(SimTime, ActorId, M)>,
}

impl<'a, M, S> Context<'a, M, S> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor handling this event.
    #[inline]
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `msg` to `dst` after `delay` nanoseconds.
    pub fn send_after(&mut self, delay: SimTime, dst: ActorId, msg: M) {
        self.outbox.push((self.now + delay, dst, msg));
    }

    /// Deliver `msg` to `dst` at absolute virtual time `at` (must not be
    /// in the past).
    pub fn send_at(&mut self, at: SimTime, dst: ActorId, msg: M) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.outbox.push((at.max(self.now), dst, msg));
    }

    /// Deliver `msg` to this actor itself after `delay`.
    pub fn send_self(&mut self, delay: SimTime, msg: M) {
        let dst = self.self_id;
        self.send_after(delay, dst, msg);
    }
}

#[derive(Debug)]
struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    dst: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The discrete-event engine.
pub struct Engine<M, S> {
    actors: Vec<Option<Box<dyn Actor<M, S>>>>,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    now: SimTime,
    seq: u64,
    events_processed: u64,
    /// Shared world state handed to every actor callback.
    pub state: S,
}

impl<M, S> Engine<M, S> {
    /// Create an engine around the given world state.
    pub fn new(state: S) -> Self {
        Engine {
            actors: Vec::new(),
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            events_processed: 0,
            state,
        }
    }

    /// Register an actor; its id is its registration order.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M, S>>) -> ActorId {
        self.actors.push(Some(actor));
        ActorId(self.actors.len() - 1)
    }

    /// Number of registered actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Schedule an event from outside any actor (simulation setup).
    pub fn schedule(&mut self, at: SimTime, dst: ActorId, msg: M) {
        debug_assert!(at >= self.now);
        self.push(at.max(self.now), dst, msg);
    }

    fn push(&mut self, time: SimTime, dst: ActorId, msg: M) {
        assert!(dst.0 < self.actors.len(), "event for unknown actor");
        self.heap.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            dst,
            msg,
        }));
        self.seq += 1;
    }

    /// Deliver one event if any is pending; returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event heap went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        let mut actor = self.actors[ev.dst.0]
            .take()
            .expect("actor is not re-entrant");
        let mut ctx = Context {
            now: self.now,
            self_id: ev.dst,
            state: &mut self.state,
            outbox: Vec::new(),
        };
        actor.handle(ev.msg, &mut ctx);
        let outbox = ctx.outbox;
        self.actors[ev.dst.0] = Some(actor);
        for (time, dst, msg) in outbox {
            self.push(time, dst, msg);
        }
        true
    }

    /// Run until no events remain; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the clock would pass `deadline` or no events remain.
    /// Events at exactly `deadline` are delivered.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records (time, payload) pairs into the shared state.
    struct Recorder;
    type Log = Vec<(SimTime, u32)>;

    impl Actor<u32, Log> for Recorder {
        fn handle(&mut self, event: u32, ctx: &mut Context<'_, u32, Log>) {
            ctx.state.push((ctx.now(), event));
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        let a = eng.add_actor(Box::new(Recorder));
        eng.schedule(30, a, 3);
        eng.schedule(10, a, 1);
        eng.schedule(20, a, 2);
        let end = eng.run();
        assert_eq!(end, 30);
        assert_eq!(eng.state, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        let a = eng.add_actor(Box::new(Recorder));
        for i in 0..10 {
            eng.schedule(5, a, i);
        }
        eng.run();
        let payloads: Vec<u32> = eng.state.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    /// Relay: forwards each event to the next actor with +7 delay until
    /// the hop counter is exhausted.
    struct Relay {
        next: Option<ActorId>,
    }
    impl Actor<u32, Log> for Relay {
        fn handle(&mut self, hops: u32, ctx: &mut Context<'_, u32, Log>) {
            ctx.state.push((ctx.now(), hops));
            if hops > 0 {
                if let Some(next) = self.next {
                    ctx.send_after(7, next, hops - 1);
                }
            }
        }
    }

    #[test]
    fn actors_schedule_followups() {
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        // Two relays pointing at each other.
        let a = eng.add_actor(Box::new(Relay { next: None }));
        let b = eng.add_actor(Box::new(Relay { next: Some(a) }));
        // Close the loop: replace a's target.
        eng.actors[a.0] = Some(Box::new(Relay { next: Some(b) }));
        eng.schedule(0, a, 4);
        let end = eng.run();
        assert_eq!(end, 4 * 7);
        assert_eq!(eng.state.len(), 5);
        assert_eq!(eng.state.last(), Some(&(28, 0)));
    }

    #[test]
    fn send_self_loops_until_done() {
        struct Countdown;
        impl Actor<u32, Log> for Countdown {
            fn handle(&mut self, n: u32, ctx: &mut Context<'_, u32, Log>) {
                ctx.state.push((ctx.now(), n));
                if n > 0 {
                    ctx.send_self(100, n - 1);
                }
            }
        }
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        let a = eng.add_actor(Box::new(Countdown));
        eng.schedule(0, a, 3);
        assert_eq!(eng.run(), 300);
        assert_eq!(eng.state, vec![(0, 3), (100, 2), (200, 1), (300, 0)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        let a = eng.add_actor(Box::new(Recorder));
        eng.schedule(10, a, 1);
        eng.schedule(20, a, 2);
        eng.schedule(30, a, 3);
        eng.run_until(20);
        assert_eq!(eng.state, vec![(10, 1), (20, 2)]);
        eng.run();
        assert_eq!(eng.state.len(), 3);
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
        let _ = eng.add_actor(Box::new(Recorder));
        assert!(!eng.step());
        assert_eq!(eng.now(), 0);
    }

    #[test]
    fn identical_runs_are_bitwise_identical() {
        let build = || {
            let mut eng: Engine<u32, Log> = Engine::new(Vec::new());
            let a = eng.add_actor(Box::new(Relay { next: None }));
            let b = eng.add_actor(Box::new(Relay { next: Some(a) }));
            eng.actors[a.0] = Some(Box::new(Relay { next: Some(b) }));
            eng.schedule(3, a, 10);
            eng.schedule(3, b, 5);
            eng.run();
            eng.state
        };
        assert_eq!(build(), build());
    }
}
