//! Property tests for the DES engine: time monotonicity, deterministic
//! replay, and resource-timeline invariants.

use proptest::prelude::*;

use panda_sim::{Actor, Context, Engine, Resource, SimTime};

/// An actor that logs `(now, payload)` and optionally relays with a
/// payload-derived delay.
struct Echo {
    relay_to: Option<panda_sim::ActorId>,
}

type Log = Vec<(SimTime, u64)>;

impl Actor<u64, Log> for Echo {
    fn handle(&mut self, event: u64, ctx: &mut Context<'_, u64, Log>) {
        ctx.state.push((ctx.now(), event));
        if event > 0 {
            if let Some(dst) = self.relay_to {
                ctx.send_after(event % 97 + 1, dst, event / 2);
            } else {
                ctx.send_self(event % 13 + 1, event - 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Delivery times never go backwards regardless of the scheduled
    /// order, and every scheduled event is delivered.
    #[test]
    fn time_is_monotone_and_delivery_complete(
        seeds in prop::collection::vec((0u64..1000, 0u64..20), 1..32),
    ) {
        let mut eng: Engine<u64, Log> = Engine::new(Vec::new());
        let a = eng.add_actor(Box::new(Echo { relay_to: None }));
        let b = eng.add_actor(Box::new(Echo { relay_to: Some(a) }));
        let mut initial = 0u64;
        for &(at, payload) in &seeds {
            let dst = if payload % 2 == 0 { a } else { b };
            eng.schedule(at, dst, payload);
            initial += 1;
        }
        eng.run();
        let log = &eng.state;
        prop_assert!(log.len() as u64 >= initial);
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
        prop_assert_eq!(eng.events_processed(), log.len() as u64);
    }

    /// The same schedule replayed twice produces an identical log.
    #[test]
    fn replay_is_deterministic(
        seeds in prop::collection::vec((0u64..1000, 0u64..20), 1..32),
    ) {
        let run = || {
            let mut eng: Engine<u64, Log> = Engine::new(Vec::new());
            let a = eng.add_actor(Box::new(Echo { relay_to: None }));
            let b = eng.add_actor(Box::new(Echo { relay_to: Some(a) }));
            for &(at, payload) in &seeds {
                let dst = if payload % 3 == 0 { a } else { b };
                eng.schedule(at, dst, payload);
            }
            eng.run();
            eng.state
        };
        prop_assert_eq!(run(), run());
    }

    /// Resource grants are non-overlapping, FIFO-ordered, and work-
    /// conserving (no idle gap when a request was already waiting).
    #[test]
    fn resource_timeline_invariants(
        requests in prop::collection::vec((0u64..500, 1u64..50), 1..64),
    ) {
        // Issue in nondecreasing ready order, as the engine does.
        let mut sorted = requests.clone();
        sorted.sort_by_key(|&(ready, _)| ready);
        let mut res = Resource::new("r");
        let mut prev_end = 0u64;
        let mut busy = 0u64;
        for &(ready, dur) in &sorted {
            let (start, end) = res.acquire(ready, dur);
            prop_assert_eq!(end - start, dur);
            prop_assert!(start >= ready, "started before ready");
            prop_assert!(start >= prev_end, "grants overlap");
            // Work conservation: the device starts at max(ready, prev_end).
            prop_assert_eq!(start, ready.max(prev_end));
            prev_end = end;
            busy += dur;
        }
        prop_assert_eq!(res.busy_time(), busy);
        prop_assert_eq!(res.grants(), sorted.len() as u64);
        prop_assert_eq!(res.free_at(), prev_end);
    }
}
