//! Element types of array cells.
//!
//! Panda moves raw bytes; the element type only determines the size of a
//! cell and, for the examples and tests, how values are encoded. The
//! paper's sample application (Figure 2) uses `int` and `double` arrays.

use std::fmt;

/// The scalar type stored in each array cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementType {
    /// 8-bit unsigned integer (1 byte).
    U8,
    /// 32-bit signed integer (4 bytes) — `int` in the paper's example.
    I32,
    /// 64-bit signed integer (8 bytes).
    I64,
    /// 32-bit IEEE float (4 bytes).
    F32,
    /// 64-bit IEEE float (8 bytes) — `double` in the paper's example.
    F64,
    /// An opaque element of the given byte width, for applications whose
    /// cells are structs; Panda never interprets cell contents.
    Opaque(u32),
}

impl ElementType {
    /// Size of one element in bytes.
    #[inline]
    pub fn size_bytes(self) -> usize {
        match self {
            ElementType::U8 => 1,
            ElementType::I32 | ElementType::F32 => 4,
            ElementType::I64 | ElementType::F64 => 8,
            ElementType::Opaque(n) => n as usize,
        }
    }

    /// A short stable name, used in schema files and reports.
    pub fn name(self) -> String {
        match self {
            ElementType::U8 => "u8".to_string(),
            ElementType::I32 => "i32".to_string(),
            ElementType::I64 => "i64".to_string(),
            ElementType::F32 => "f32".to_string(),
            ElementType::F64 => "f64".to_string(),
            ElementType::Opaque(n) => format!("opaque{n}"),
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_types() {
        assert_eq!(ElementType::U8.size_bytes(), 1);
        assert_eq!(ElementType::I32.size_bytes(), 4);
        assert_eq!(ElementType::F32.size_bytes(), 4);
        assert_eq!(ElementType::I64.size_bytes(), 8);
        assert_eq!(ElementType::F64.size_bytes(), 8);
        assert_eq!(ElementType::Opaque(24).size_bytes(), 24);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ElementType::F64.to_string(), "f64");
        assert_eq!(ElementType::Opaque(16).to_string(), "opaque16");
    }
}
