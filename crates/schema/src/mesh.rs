//! Logical processor / I/O-node meshes.
//!
//! The paper distributes arrays over meshes such as a 4×4×2 grid of 32
//! compute nodes, and thinks of the I/O nodes for a `BLOCK,*,*` disk
//! schema as an `n×1×1` mesh. A [`Mesh`] is just a shape over node ranks
//! with row-major rank↔coordinate conversion.

use crate::error::SchemaError;
use crate::shape::Shape;

/// A logical grid of nodes. Node ranks are assigned in row-major order
/// over the grid, rank 0 at the all-zeros coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    shape: Shape,
}

impl Mesh {
    /// Create a mesh with the given per-axis extents (all nonzero).
    pub fn new(dims: &[usize]) -> Result<Self, SchemaError> {
        Ok(Mesh {
            shape: Shape::new(dims)?,
        })
    }

    /// A 1-D mesh of `n` nodes.
    pub fn line(n: usize) -> Result<Self, SchemaError> {
        Mesh::new(&[n])
    }

    /// Number of mesh axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Per-axis extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of axis `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.shape.dim(d)
    }

    /// Total number of nodes in the mesh.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.shape.num_elements()
    }

    /// Convert a node rank into mesh coordinates.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.num_nodes(), "rank out of range");
        self.shape.delinearize(rank)
    }

    /// Convert mesh coordinates into a node rank.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        self.shape.linearize(coords)
    }

    /// The underlying shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }
}

impl std::fmt::Display for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dims: Vec<String> = self.dims().iter().map(|d| d.to_string()).collect();
        write!(f, "{}", dims.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_meshes() {
        // The paper's compute meshes: 2x2x2, 4x2x2, 6x2x2, 4x4x2.
        for (dims, n) in [
            (vec![2, 2, 2], 8),
            (vec![4, 2, 2], 16),
            (vec![6, 2, 2], 24),
            (vec![4, 4, 2], 32),
        ] {
            let m = Mesh::new(&dims).unwrap();
            assert_eq!(m.num_nodes(), n);
        }
    }

    #[test]
    fn rank_coordinate_roundtrip() {
        let m = Mesh::new(&[4, 4, 2]).unwrap();
        for r in 0..m.num_nodes() {
            assert_eq!(m.rank_of(&m.coords_of(r)), r);
        }
    }

    #[test]
    fn row_major_rank_order() {
        let m = Mesh::new(&[2, 3]).unwrap();
        assert_eq!(m.coords_of(0), vec![0, 0]);
        assert_eq!(m.coords_of(1), vec![0, 1]);
        assert_eq!(m.coords_of(3), vec![1, 0]);
    }

    #[test]
    fn line_mesh() {
        let m = Mesh::line(8).unwrap();
        assert_eq!(m.rank(), 1);
        assert_eq!(m.num_nodes(), 8);
        assert_eq!(m.to_string(), "8");
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Mesh::new(&[4, 4, 2]).unwrap().to_string(), "4x4x2");
    }

    #[test]
    fn zero_axis_rejected() {
        assert!(Mesh::new(&[2, 0]).is_err());
    }
}
