//! # panda-schema — array geometry substrate for Panda
//!
//! This crate implements the array-layout machinery that the Panda 2.0
//! collective-I/O library (Seamons et al., SC '95) is built on:
//!
//! * [`Shape`] — extents of an n-dimensional array and row-major index
//!   arithmetic;
//! * [`Dist`] — HPF-style per-dimension distribution directives (`BLOCK`,
//!   `*`, and block-cyclic as an extension);
//! * [`Mesh`] — a logical processor (or I/O-node) grid;
//! * [`DataSchema`] — a complete layout: shape × element type ×
//!   distribution × mesh, yielding a [`ChunkGrid`] that tiles the array
//!   into rectangular chunks, one per mesh cell;
//! * [`Region`] — half-open rectangular index regions with intersection,
//!   used to describe chunks and the sub-chunks exchanged between Panda
//!   clients and servers;
//! * [`copy`] — strided gather/scatter kernels that move a region of data
//!   between two row-major buffers laid out for different enclosing
//!   regions (the "reorganization" machinery of the paper);
//! * [`subchunk`] — the on-the-fly subdivision of large disk chunks into
//!   ≤ 1 MB file-contiguous pieces (paper §2).
//!
//! Everything here is pure computation: no I/O, no threads. The crate is
//! the shared vocabulary of the runtime (`panda-core`) and the performance
//! model (`panda-model`), which guarantees that simulated experiments
//! replay exactly the plans the real implementation executes.

#![warn(missing_docs)]

pub mod chunking;
pub mod copy;
pub mod cyclic;
pub mod dist;
pub mod element;
pub mod error;
pub mod mesh;
pub mod region;
pub mod shape;
pub mod subchunk;

pub use chunking::{ChunkGrid, DataSchema};
pub use copy::{copy_region, pack_region, unpack_region};
pub use dist::Dist;
pub use element::ElementType;
pub use error::SchemaError;
pub use mesh::Mesh;
pub use region::Region;
pub use shape::Shape;
pub use subchunk::{split_into_subchunks, Subchunk};

/// The default maximum subchunk size used throughout the paper's
/// experiments: chunks larger than this are subdivided on the fly during a
/// collective operation (paper §2: "we chose a subchunk size of 1 MB for
/// all experiments in this paper").
pub const DEFAULT_SUBCHUNK_BYTES: usize = 1 << 20;
