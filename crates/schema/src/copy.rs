//! Strided gather/scatter copy kernels.
//!
//! Panda clients and servers hold array data as *chunk buffers*: a
//! row-major buffer holding exactly one rectangular [`Region`] of the
//! global array. Moving a sub-region between two such buffers (a client's
//! memory chunk and a server's disk subchunk) is the paper's
//! "reorganization" step. The kernels here coalesce the copy into maximal
//! contiguous runs: when the portion spans the full extent of trailing
//! dimensions in both the source and destination layouts, whole slabs
//! move with a single `copy_from_slice`.

use crate::error::SchemaError;
use crate::region::Region;

/// Byte offset of global index `idx` inside a row-major buffer laid out
/// for `enclosing`.
#[inline]
pub fn offset_in_region(enclosing: &Region, idx: &[usize], elem_size: usize) -> usize {
    debug_assert_eq!(idx.len(), enclosing.rank());
    debug_assert!(enclosing.contains_index(idx));
    let mut off = 0usize;
    for (d, &i) in idx.iter().enumerate() {
        off = off * enclosing.extent(d) + (i - enclosing.lo()[d]);
    }
    off * elem_size
}

/// Validate that `buf` is large enough to hold `region` at `elem_size`.
fn check_buffer(buf_len: usize, region: &Region, elem_size: usize) -> Result<(), SchemaError> {
    let required = region.num_bytes(elem_size);
    if buf_len < required {
        return Err(SchemaError::BufferTooSmall {
            required,
            actual: buf_len,
        });
    }
    Ok(())
}

/// Plan of a strided copy: the outer iteration space, the byte length of
/// each contiguous run, and the per-dimension byte strides of both
/// layouts (so the odometer can advance offsets incrementally instead of
/// re-deriving them from the multi-index on every run).
struct RunPlan {
    /// Dimensions 0..cut are iterated run-by-run; dims cut..rank are
    /// fused into each run.
    cut: usize,
    /// Bytes moved per run.
    run_bytes: usize,
    /// Byte distance between consecutive indices of each dimension in
    /// the source layout.
    src_strides: Vec<usize>,
    /// Same for the destination layout.
    dst_strides: Vec<usize>,
}

/// Row-major byte strides of a buffer laid out for `region`.
fn byte_strides(region: &Region, elem_size: usize) -> Vec<usize> {
    let rank = region.rank();
    let mut strides = vec![0usize; rank];
    let mut acc = elem_size;
    for d in (0..rank).rev() {
        strides[d] = acc;
        acc *= region.extent(d);
    }
    strides
}

/// Find the maximal contiguous run structure for copying `portion`
/// between buffers laid out for `src` and `dst`.
///
/// Fusion works on strides, not extent equality: trailing dim `d` folds
/// into the run when stepping it advances both buffers by exactly the
/// bytes fused so far (`src` and `dst` stride == `run_bytes`), or when
/// the portion is a singleton along it (nothing to step). The innermost
/// dim always fuses — both strides are `elem_size` there — so even a
/// partial row moves as one `copy_from_slice` instead of
/// element-by-element, and a full-extent chain keeps folding into whole
/// slabs.
fn plan_runs(src: &Region, dst: &Region, portion: &Region, elem_size: usize) -> RunPlan {
    let rank = portion.rank();
    let src_strides = byte_strides(src, elem_size);
    let dst_strides = byte_strides(dst, elem_size);
    let mut cut = rank;
    let mut run_bytes = elem_size;
    while cut > 0 {
        let d = cut - 1;
        if portion.extent(d) == 1 || (src_strides[d] == run_bytes && dst_strides[d] == run_bytes) {
            run_bytes *= portion.extent(d);
            cut -= 1;
        } else {
            break;
        }
    }
    RunPlan {
        cut,
        run_bytes,
        src_strides,
        dst_strides,
    }
}

/// One iterated dimension of a strided copy, after singleton dims are
/// compacted away.
struct IterDim {
    /// Portion extent along this dim.
    n: usize,
    /// Source byte stride.
    ss: usize,
    /// Destination byte stride.
    ds: usize,
}

/// Copy `n` runs of `N` bytes, striding `ss`/`ds` — the monomorphized
/// inner loop for element-sized runs. The array round-trip tells the
/// compiler the copy length is a constant, so each line is a couple of
/// register moves instead of a `memcpy` call.
#[inline]
fn copy_runs_fixed<const N: usize>(
    dst: &mut [u8],
    src: &[u8],
    mut doff: usize,
    mut so: usize,
    n: usize,
    ss: usize,
    ds: usize,
) {
    for _ in 0..n {
        let line: [u8; N] = src[so..so + N].try_into().expect("run within source");
        dst[doff..doff + N].copy_from_slice(&line);
        so += ss;
        doff += ds;
    }
}

/// Copy `n` runs of `run` bytes each from `src` at `so` to `dst` at
/// `doff`, advancing the offsets by `ss`/`ds` per run. Runs of the
/// common element sizes dispatch to a constant-size loop.
#[allow(clippy::too_many_arguments)]
#[inline]
fn copy_runs(
    dst: &mut [u8],
    src: &[u8],
    doff: usize,
    so: usize,
    run: usize,
    n: usize,
    ss: usize,
    ds: usize,
) {
    match run {
        1 => copy_runs_fixed::<1>(dst, src, doff, so, n, ss, ds),
        2 => copy_runs_fixed::<2>(dst, src, doff, so, n, ss, ds),
        4 => copy_runs_fixed::<4>(dst, src, doff, so, n, ss, ds),
        8 => copy_runs_fixed::<8>(dst, src, doff, so, n, ss, ds),
        16 => copy_runs_fixed::<16>(dst, src, doff, so, n, ss, ds),
        _ => {
            let (mut so, mut doff) = (so, doff);
            for _ in 0..n {
                dst[doff..doff + run].copy_from_slice(&src[so..so + run]);
                so += ss;
                doff += ds;
            }
        }
    }
}

/// Copy `portion` from a buffer holding `src_region` into a buffer
/// holding `dst_region`. `portion` must be contained in both regions; the
/// two buffers must be distinct allocations (enforced by `&`/`&mut`).
///
/// Returns the number of bytes moved.
pub fn copy_region(
    src: &[u8],
    src_region: &Region,
    dst: &mut [u8],
    dst_region: &Region,
    portion: &Region,
    elem_size: usize,
) -> Result<usize, SchemaError> {
    let rank = portion.rank();
    if src_region.rank() != rank || dst_region.rank() != rank {
        return Err(SchemaError::RegionRankMismatch {
            left: src_region.rank(),
            right: rank,
        });
    }
    if portion.is_empty() && rank > 0 {
        return Ok(0);
    }
    if !src_region.contains_region(portion) || !dst_region.contains_region(portion) {
        return Err(SchemaError::RegionNotContained);
    }
    check_buffer(src.len(), src_region, elem_size)?;
    check_buffer(dst.len(), dst_region, elem_size)?;

    if rank == 0 {
        dst[..elem_size].copy_from_slice(&src[..elem_size]);
        return Ok(elem_size);
    }

    let plan = plan_runs(src_region, dst_region, portion, elem_size);
    let moved = portion.num_bytes(elem_size);
    // Compact the iterated dims: singleton dims contribute nothing to
    // the odometer, so dropping them here keeps the loop nest as shallow
    // as the portion's true shape.
    let iter: Vec<IterDim> = (0..plan.cut)
        .filter(|&d| portion.extent(d) > 1)
        .map(|d| IterDim {
            n: portion.extent(d),
            ss: plan.src_strides[d],
            ds: plan.dst_strides[d],
        })
        .collect();
    let mut so = offset_in_region(src_region, portion.lo(), elem_size);
    let mut doff = offset_in_region(dst_region, portion.lo(), elem_size);
    let run = plan.run_bytes;

    // The innermost iterated dim drives a tight batched loop; the rest
    // form an odometer whose byte offsets mirror every index mutation
    // (add one stride on increment, rewind a whole extent on reset) so
    // each batch costs O(1) offset work instead of an O(rank)
    // re-linearization.
    let Some((inner, outer)) = iter.split_last() else {
        // Everything fused: the whole portion is one contiguous run.
        copy_runs(dst, src, doff, so, run, 1, 0, 0);
        return Ok(moved);
    };
    let mut ctr = vec![0usize; outer.len()];
    loop {
        copy_runs(dst, src, doff, so, run, inner.n, inner.ss, inner.ds);
        // Advance the outer odometer.
        let mut d = outer.len();
        loop {
            if d == 0 {
                return Ok(moved);
            }
            d -= 1;
            ctr[d] += 1;
            so += outer[d].ss;
            doff += outer[d].ds;
            if ctr[d] < outer[d].n {
                break;
            }
            ctr[d] = 0;
            so -= outer[d].ss * outer[d].n;
            doff -= outer[d].ds * outer[d].n;
        }
    }
}

/// Gather `sub` out of a buffer holding `src_region` into a fresh
/// contiguous buffer laid out for `sub` itself.
///
/// This is what a Panda client does when a server requests a sub-chunk
/// that is not contiguous in the client's memory (paper §2: "the client
/// is responsible for any reorganization required to assemble the
/// requested sub-chunk").
pub fn pack_region(
    src: &[u8],
    src_region: &Region,
    sub: &Region,
    elem_size: usize,
) -> Result<Vec<u8>, SchemaError> {
    let mut out = Vec::new();
    pack_region_into(&mut out, src, src_region, sub, elem_size)?;
    Ok(out)
}

/// [`pack_region`] into a caller-owned buffer, resized to exactly the
/// packed length. Reusing one scratch buffer across many packs turns the
/// per-piece allocation of the transfer hot paths into a no-op after the
/// first call.
pub fn pack_region_into(
    out: &mut Vec<u8>,
    src: &[u8],
    src_region: &Region,
    sub: &Region,
    elem_size: usize,
) -> Result<(), SchemaError> {
    out.clear();
    out.resize(sub.num_bytes(elem_size), 0);
    copy_region(src, src_region, out, sub, sub, elem_size)?;
    Ok(())
}

/// Scatter a contiguous buffer laid out for `sub` into a buffer holding
/// `dst_region` (inverse of [`pack_region`]).
pub fn unpack_region(
    dst: &mut [u8],
    dst_region: &Region,
    sub: &Region,
    data: &[u8],
    elem_size: usize,
) -> Result<usize, SchemaError> {
    check_buffer(data.len(), sub, elem_size)?;
    copy_region(data, sub, dst, dst_region, sub, elem_size)
}

/// True iff `sub` occupies one contiguous byte range of a buffer laid out
/// for `enclosing` (i.e. the copy would be a single `memcpy`). Panda's
/// fast path: under natural chunking every exchanged sub-chunk is
/// contiguous on both sides.
pub fn is_contiguous_in(enclosing: &Region, sub: &Region) -> bool {
    let rank = sub.rank();
    if enclosing.rank() != rank {
        return false;
    }
    if sub.is_empty() && rank > 0 {
        return true;
    }
    // Contiguous iff: there is a cut c with sub spanning full extents for
    // d > c, arbitrary segment at d == c, and extent 1 for d < c.
    let mut c = rank;
    while c > 0 && sub.extent(c - 1) == enclosing.extent(c - 1) {
        c -= 1;
    }
    // dims before the (possibly partial) dim c-1 must be singletons
    let first_partial = c.saturating_sub(1);
    (0..first_partial).all(|d| sub.extent(d) == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn r(lo: &[usize], hi: &[usize]) -> Region {
        Region::new(lo, hi).unwrap()
    }

    /// Fill a region buffer so that the element at global index `idx`
    /// holds a value derived from `idx` (1 byte per element for clarity).
    fn fill_tagged(region: &Region) -> Vec<u8> {
        let shape = Shape::new(
            &(0..region.rank())
                .map(|d| region.extent(d))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut buf = vec![0u8; region.num_elements()];
        for (i, local) in shape.iter_indices().enumerate() {
            let global: Vec<usize> = local
                .iter()
                .zip(region.lo())
                .map(|(&l, &o)| l + o)
                .collect();
            // Tag = low byte of a positional hash of the global index.
            let tag: usize = global
                .iter()
                .enumerate()
                .map(|(d, &g)| g.wrapping_mul(31usize.wrapping_pow(d as u32 + 1)))
                .sum();
            buf[i] = (tag % 251) as u8 + 1;
        }
        debug_assert!(!buf.contains(&0));
        buf
    }

    fn byte_at(buf: &[u8], region: &Region, idx: &[usize]) -> u8 {
        buf[offset_in_region(region, idx, 1)]
    }

    #[test]
    fn offset_in_region_is_row_major() {
        let reg = r(&[2, 3], &[5, 7]); // 3x4
        assert_eq!(offset_in_region(&reg, &[2, 3], 1), 0);
        assert_eq!(offset_in_region(&reg, &[2, 4], 1), 1);
        assert_eq!(offset_in_region(&reg, &[3, 3], 1), 4);
        assert_eq!(offset_in_region(&reg, &[4, 6], 8), 8 * 11);
    }

    #[test]
    fn copy_region_moves_exactly_the_portion() {
        let src_reg = r(&[0, 0], &[6, 8]);
        let dst_reg = r(&[2, 2], &[8, 10]);
        let portion = r(&[2, 2], &[6, 8]);
        let src = fill_tagged(&src_reg);
        let mut dst = vec![0u8; dst_reg.num_elements()];
        let moved = copy_region(&src, &src_reg, &mut dst, &dst_reg, &portion, 1).unwrap();
        assert_eq!(moved, portion.num_elements());
        // Every index inside the portion carries the source tag ...
        for a in portion.lo()[0]..portion.hi()[0] {
            for b in portion.lo()[1]..portion.hi()[1] {
                assert_eq!(
                    byte_at(&dst, &dst_reg, &[a, b]),
                    byte_at(&src, &src_reg, &[a, b])
                );
            }
        }
        // ... and everything outside is untouched (still zero).
        let untouched = dst.iter().filter(|&&b| b == 0).count();
        assert_eq!(untouched, dst_reg.num_elements() - portion.num_elements());
    }

    #[test]
    fn copy_region_whole_region_is_single_memcpy_semantics() {
        let reg = r(&[4, 4], &[8, 8]);
        let src = fill_tagged(&reg);
        let mut dst = vec![0u8; reg.num_elements()];
        copy_region(&src, &reg, &mut dst, &reg, &reg, 1).unwrap();
        assert_eq!(src, dst);
    }

    #[test]
    fn copy_region_multibyte_elements() {
        let src_reg = r(&[0, 0], &[4, 4]);
        let dst_reg = r(&[0, 0], &[4, 4]);
        let portion = r(&[1, 1], &[3, 3]);
        // 4-byte elements tagged by linear position.
        let mut src = vec![0u8; src_reg.num_elements() * 4];
        for i in 0..src_reg.num_elements() {
            src[i * 4..i * 4 + 4].copy_from_slice(&(i as u32).to_le_bytes());
        }
        let mut dst = vec![0xffu8; dst_reg.num_elements() * 4];
        copy_region(&src, &src_reg, &mut dst, &dst_reg, &portion, 4).unwrap();
        for a in 1..3 {
            for b in 1..3 {
                let off = offset_in_region(&dst_reg, &[a, b], 4);
                let v = u32::from_le_bytes(dst[off..off + 4].try_into().unwrap());
                assert_eq!(v as usize, a * 4 + b);
            }
        }
    }

    #[test]
    fn copy_region_rejects_uncontained_portion() {
        let src_reg = r(&[0, 0], &[4, 4]);
        let dst_reg = r(&[0, 0], &[4, 4]);
        let portion = r(&[2, 2], &[6, 6]);
        let src = vec![0u8; 16];
        let mut dst = vec![0u8; 16];
        assert_eq!(
            copy_region(&src, &src_reg, &mut dst, &dst_reg, &portion, 1).unwrap_err(),
            SchemaError::RegionNotContained
        );
    }

    #[test]
    fn copy_region_rejects_short_buffers() {
        let reg = r(&[0, 0], &[4, 4]);
        let src = vec![0u8; 15];
        let mut dst = vec![0u8; 16];
        assert!(matches!(
            copy_region(&src, &reg, &mut dst, &reg, &reg, 1).unwrap_err(),
            SchemaError::BufferTooSmall { .. }
        ));
    }

    #[test]
    fn copy_region_empty_portion_is_noop() {
        let reg = r(&[0, 0], &[4, 4]);
        let src = vec![1u8; 16];
        let mut dst = vec![0u8; 16];
        let portion = r(&[2, 1], &[2, 3]);
        let moved = copy_region(&src, &reg, &mut dst, &reg, &portion, 1).unwrap();
        assert_eq!(moved, 0);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn copy_region_rank0() {
        let reg = Region::new(&[], &[]).unwrap();
        let src = vec![7u8, 8];
        let mut dst = vec![0u8; 2];
        let moved = copy_region(&src, &reg, &mut dst, &reg, &reg, 2).unwrap();
        assert_eq!(moved, 2);
        assert_eq!(dst, vec![7, 8]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let chunk = r(&[10, 20, 30], &[18, 28, 38]); // 8x8x8
        let sub = r(&[12, 22, 31], &[16, 27, 38]);
        let src = fill_tagged(&chunk);
        let packed = pack_region(&src, &chunk, &sub, 1).unwrap();
        assert_eq!(packed.len(), sub.num_elements());
        let mut dst = vec![0u8; chunk.num_elements()];
        unpack_region(&mut dst, &chunk, &sub, &packed, 1).unwrap();
        for a in sub.lo()[0]..sub.hi()[0] {
            for b in sub.lo()[1]..sub.hi()[1] {
                for c in sub.lo()[2]..sub.hi()[2] {
                    assert_eq!(
                        byte_at(&dst, &chunk, &[a, b, c]),
                        byte_at(&src, &chunk, &[a, b, c])
                    );
                }
            }
        }
    }

    #[test]
    fn pack_region_into_reused_scratch_matches_fresh_pack() {
        let chunk = r(&[0, 0], &[6, 8]);
        let src = fill_tagged(&chunk);
        let mut scratch = Vec::new();
        // Shrinking, growing, and same-size repacks over one scratch
        // buffer must all equal a fresh pack (stale bytes overwritten).
        for sub in [
            r(&[1, 2], &[4, 5]),
            r(&[0, 0], &[6, 8]),
            r(&[5, 7], &[6, 8]),
            r(&[0, 0], &[6, 8]),
        ] {
            pack_region_into(&mut scratch, &src, &chunk, &sub, 1).unwrap();
            assert_eq!(scratch, pack_region(&src, &chunk, &sub, 1).unwrap());
        }
    }

    #[test]
    fn pack_full_width_portion_uses_slab_runs() {
        // Portion spans full extent in the trailing dim of both layouts:
        // result must still be correct (exercises the coalescing path).
        let chunk = r(&[0, 0], &[6, 5]);
        let sub = r(&[2, 0], &[5, 5]);
        let src = fill_tagged(&chunk);
        let packed = pack_region(&src, &chunk, &sub, 1).unwrap();
        // The packed buffer equals the corresponding slice of src, since
        // rows are contiguous and adjacent.
        let start = offset_in_region(&chunk, &[2, 0], 1);
        assert_eq!(&packed[..], &src[start..start + 15]);
    }

    #[test]
    fn is_contiguous_in_detects_fast_path() {
        let chunk = r(&[0, 0, 0], &[4, 6, 8]);
        // Full chunk → contiguous.
        assert!(is_contiguous_in(&chunk, &chunk));
        // A run of full planes → contiguous.
        assert!(is_contiguous_in(&chunk, &r(&[1, 0, 0], &[3, 6, 8])));
        // A run of full rows inside one plane → contiguous.
        assert!(is_contiguous_in(&chunk, &r(&[2, 1, 0], &[3, 4, 8])));
        // A segment of one row → contiguous.
        assert!(is_contiguous_in(&chunk, &r(&[2, 3, 2], &[3, 4, 7])));
        // A sub-box that is narrower than the row → NOT contiguous.
        assert!(!is_contiguous_in(&chunk, &r(&[0, 0, 0], &[4, 6, 4])));
        // Two partial rows → NOT contiguous.
        assert!(!is_contiguous_in(&chunk, &r(&[0, 0, 2], &[1, 2, 7])));
        // Empty region is trivially contiguous.
        assert!(is_contiguous_in(&chunk, &Region::empty(3)));
    }
}
