//! On-the-fly subdivision of disk chunks into ≤ 1 MB subchunks.
//!
//! Paper §2: "To limit buffer space requirements and also maximize i/o
//! performance, Panda uses a form of sub-chunking on disk (i.e., the
//! internal subdivision of chunks into smaller chunks) to break large
//! disk chunks into more manageable units on-the-fly when performing a
//! collective i/o. (After experimentation, we chose a subchunk size of
//! 1 MB ...) This happens transparently to the user and the Panda client,
//! and does not change the memory schema, disk schema, or round-robin
//! assignment of chunks in any way."
//!
//! The subdivision implemented here has the property the server relies
//! on: each subchunk is a *contiguous byte range* of the chunk's
//! row-major file layout, and successive subchunks are adjacent, so
//! writing them in order produces strictly sequential file I/O.

use crate::copy::offset_in_region;
use crate::error::SchemaError;
use crate::region::Region;

/// One piece of a subdivided chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subchunk {
    /// The global-array region this piece covers.
    pub region: Region,
    /// Byte offset of the piece inside the chunk's row-major file layout.
    pub offset_in_chunk: usize,
    /// Size of the piece in bytes.
    pub bytes: usize,
}

/// Split `chunk` into file-contiguous pieces of at most `max_bytes` each
/// (a single element may exceed the cap; it is never split).
///
/// Pieces are returned in file order: `offset_in_chunk` starts at 0 and
/// each piece begins where the previous one ended. An empty chunk yields
/// no pieces.
///
/// ```
/// use panda_schema::{split_into_subchunks, Region};
/// // A 64 MB chunk under the paper's 1 MB cap → 64 x 1 MB pieces.
/// let chunk = Region::new(&[0, 0, 0], &[256, 256, 128]).unwrap();
/// let pieces = split_into_subchunks(&chunk, 8, 1 << 20).unwrap();
/// assert_eq!(pieces.len(), 64);
/// assert!(pieces.iter().all(|p| p.bytes == 1 << 20));
/// assert_eq!(pieces[1].offset_in_chunk, 1 << 20);
/// ```
pub fn split_into_subchunks(
    chunk: &Region,
    elem_size: usize,
    max_bytes: usize,
) -> Result<Vec<Subchunk>, SchemaError> {
    if max_bytes == 0 {
        return Err(SchemaError::ZeroSubchunkLimit);
    }
    let rank = chunk.rank();
    if chunk.is_empty() && rank > 0 {
        return Ok(Vec::new());
    }
    let total = chunk.num_bytes(elem_size);
    if total <= max_bytes || rank == 0 {
        return Ok(vec![Subchunk {
            region: chunk.clone(),
            offset_in_chunk: 0,
            bytes: total,
        }]);
    }

    // bytes_per_index(d): bytes covered by advancing dim d by one while
    // spanning all later dims fully.
    let mut bpi = vec![elem_size; rank];
    for d in (0..rank - 1).rev() {
        bpi[d] = bpi[d + 1] * chunk.extent(d + 1);
    }
    // The cut dimension: outermost dim whose unit slab fits in the cap.
    let cut = (0..rank).find(|&d| bpi[d] <= max_bytes).unwrap_or(rank - 1);
    // Group size along the cut dimension (>= 1 even if a single element
    // overflows the cap).
    let group = (max_bytes / bpi[cut]).max(1);

    let mut out = Vec::new();
    // Odometer over dims 0..cut (single indices), grouping along `cut`.
    let mut prefix = chunk.lo().to_vec();
    loop {
        let mut a = chunk.lo()[cut];
        while a < chunk.hi()[cut] {
            let b = (a + group).min(chunk.hi()[cut]);
            let mut lo = prefix.clone();
            let mut hi: Vec<usize> = prefix.iter().map(|&x| x + 1).collect();
            lo[cut] = a;
            hi[cut] = b;
            lo[cut + 1..rank].copy_from_slice(&chunk.lo()[cut + 1..rank]);
            hi[cut + 1..rank].copy_from_slice(&chunk.hi()[cut + 1..rank]);
            let region = Region::new(&lo, &hi).expect("well-formed subchunk");
            let bytes = region.num_bytes(elem_size);
            let offset_in_chunk = offset_in_region(chunk, &lo, elem_size);
            out.push(Subchunk {
                region,
                offset_in_chunk,
                bytes,
            });
            a = b;
        }
        // Advance the prefix odometer over dims 0..cut.
        let mut d = cut;
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            prefix[d] += 1;
            if prefix[d] < chunk.hi()[d] {
                break;
            }
            prefix[d] = chunk.lo()[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy::is_contiguous_in;

    fn r(lo: &[usize], hi: &[usize]) -> Region {
        Region::new(lo, hi).unwrap()
    }

    fn check_invariants(chunk: &Region, elem: usize, max: usize, pieces: &[Subchunk]) {
        // Pieces tile the chunk in file order.
        let mut expected_offset = 0usize;
        let mut covered = 0usize;
        for p in pieces {
            assert_eq!(p.offset_in_chunk, expected_offset, "pieces are adjacent");
            assert_eq!(p.bytes, p.region.num_bytes(elem));
            assert!(chunk.contains_region(&p.region));
            assert!(
                is_contiguous_in(chunk, &p.region),
                "piece {} not contiguous in chunk {}",
                p.region.display(),
                chunk.display()
            );
            assert!(
                p.bytes <= max || p.region.num_elements() == 1,
                "piece exceeds cap"
            );
            expected_offset += p.bytes;
            covered += p.region.num_elements();
        }
        assert_eq!(covered, chunk.num_elements(), "pieces tile the chunk");
        assert_eq!(expected_offset, chunk.num_bytes(elem));
    }

    #[test]
    fn small_chunk_is_one_piece() {
        let c = r(&[0, 0], &[4, 4]);
        let pieces = split_into_subchunks(&c, 8, 1 << 20).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].region, c);
        assert_eq!(pieces[0].offset_in_chunk, 0);
        assert_eq!(pieces[0].bytes, 128);
    }

    #[test]
    fn empty_chunk_yields_nothing() {
        let c = r(&[2, 0], &[2, 4]);
        assert!(split_into_subchunks(&c, 8, 1024).unwrap().is_empty());
    }

    #[test]
    fn zero_cap_rejected() {
        let c = r(&[0], &[4]);
        assert_eq!(
            split_into_subchunks(&c, 8, 0).unwrap_err(),
            SchemaError::ZeroSubchunkLimit
        );
    }

    #[test]
    fn split_along_outermost_dim() {
        // 8x4x4 of 8-byte elems = 1024 B; cap 256 B → groups of 2 planes
        // (each plane is 4*4*8 = 128 B; 256/128 = 2).
        let c = r(&[0, 0, 0], &[8, 4, 4]);
        let pieces = split_into_subchunks(&c, 8, 256).unwrap();
        assert_eq!(pieces.len(), 4);
        assert_eq!(pieces[0].region, r(&[0, 0, 0], &[2, 4, 4]));
        assert_eq!(pieces[3].region, r(&[6, 0, 0], &[8, 4, 4]));
        check_invariants(&c, 8, 256, &pieces);
    }

    #[test]
    fn split_recurses_into_inner_dims_when_slabs_too_big() {
        // One plane is 128 B > cap 64 B → cut moves to dim 1: groups of 2
        // rows (row = 4*8 = 32 B) per piece, one dim-0 index at a time.
        let c = r(&[0, 0, 0], &[8, 4, 4]);
        let pieces = split_into_subchunks(&c, 8, 64).unwrap();
        assert_eq!(pieces.len(), 16);
        assert_eq!(pieces[0].region, r(&[0, 0, 0], &[1, 2, 4]));
        assert_eq!(pieces[1].region, r(&[0, 2, 0], &[1, 4, 4]));
        check_invariants(&c, 8, 64, &pieces);
    }

    #[test]
    fn single_element_may_exceed_cap() {
        let c = r(&[0], &[3]);
        let pieces = split_into_subchunks(&c, 100, 64).unwrap();
        assert_eq!(pieces.len(), 3);
        for p in &pieces {
            assert_eq!(p.region.num_elements(), 1);
            assert_eq!(p.bytes, 100);
        }
        check_invariants(&c, 100, 64, &pieces);
    }

    #[test]
    fn rank0_chunk() {
        let c = Region::new(&[], &[]).unwrap();
        let pieces = split_into_subchunks(&c, 8, 4).unwrap();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].bytes, 8);
    }

    #[test]
    fn paper_scale_one_mb_cap() {
        // A 64 MB chunk (256x256x128 f64) with the paper's 1 MB cap →
        // 64 pieces of exactly 1 MB.
        let c = r(&[0, 0, 0], &[256, 256, 128]);
        let pieces = split_into_subchunks(&c, 8, 1 << 20).unwrap();
        assert_eq!(pieces.len(), 64);
        assert!(pieces.iter().all(|p| p.bytes == 1 << 20));
        check_invariants(&c, 8, 1 << 20, &pieces);
    }

    #[test]
    fn offsets_match_region_lo() {
        let c = r(&[4, 8], &[12, 24]); // 8x16, offset chunk
        let pieces = split_into_subchunks(&c, 4, 96).unwrap();
        for p in &pieces {
            assert_eq!(p.offset_in_chunk, offset_in_region(&c, p.region.lo(), 4));
        }
        check_invariants(&c, 4, 96, &pieces);
    }
}
