//! Half-open rectangular index regions.
//!
//! Regions are the currency of Panda's internal protocol: a chunk of an
//! array is a region, the ≤ 1 MB subchunks a server streams to disk are
//! regions, and the logical requests clients and servers exchange ("send
//! me `A[20,30,40]..A[50,60,70]`", paper §2) are regions.

use crate::error::SchemaError;
use crate::shape::Shape;

/// An n-dimensional half-open box `[lo, hi)`.
///
/// A region may be *empty* (zero extent in some dimension); empty regions
/// arise naturally when a `BLOCK` distribution over `p` parts does not
/// divide the array extent and trailing mesh cells receive nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Region {
    /// Create a region from inclusive lower and exclusive upper corners.
    pub fn new(lo: &[usize], hi: &[usize]) -> Result<Self, SchemaError> {
        if lo.len() != hi.len() {
            return Err(SchemaError::RegionRankMismatch {
                left: lo.len(),
                right: hi.len(),
            });
        }
        for d in 0..lo.len() {
            if lo[d] > hi[d] {
                return Err(SchemaError::InvalidRegion { dim: d });
            }
        }
        Ok(Region {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        })
    }

    /// The region covering an entire array of the given shape.
    pub fn of_shape(shape: &Shape) -> Self {
        Region {
            lo: vec![0; shape.rank()],
            hi: shape.dims().to_vec(),
        }
    }

    /// A canonical empty region of the given rank.
    pub fn empty(rank: usize) -> Self {
        Region {
            lo: vec![0; rank],
            hi: vec![0; rank],
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Exclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Extent along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> usize {
        self.hi[d] - self.lo[d]
    }

    /// The extents of the region as a vector.
    pub fn extents(&self) -> Vec<usize> {
        (0..self.rank()).map(|d| self.extent(d)).collect()
    }

    /// The region's extents as a [`Shape`], or `None` if the region is
    /// empty in some dimension.
    pub fn shape(&self) -> Option<Shape> {
        if self.is_empty() && self.rank() > 0 {
            return None;
        }
        Shape::new(&self.extents()).ok()
    }

    /// True iff the region contains no indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..self.rank()).any(|d| self.lo[d] >= self.hi[d])
    }

    /// Number of indices contained.
    pub fn num_elements(&self) -> usize {
        if self.is_empty() && self.rank() > 0 {
            return 0;
        }
        (0..self.rank()).map(|d| self.extent(d)).product()
    }

    /// Number of bytes the region occupies at the given element size.
    #[inline]
    pub fn num_bytes(&self, elem_size: usize) -> usize {
        self.num_elements() * elem_size
    }

    /// True iff `idx` lies inside the region.
    pub fn contains_index(&self, idx: &[usize]) -> bool {
        idx.len() == self.rank()
            && (0..self.rank()).all(|d| self.lo[d] <= idx[d] && idx[d] < self.hi[d])
    }

    /// True iff `other` is entirely inside `self`. Empty regions are
    /// contained in everything of equal rank.
    pub fn contains_region(&self, other: &Region) -> bool {
        if other.rank() != self.rank() {
            return false;
        }
        if other.is_empty() {
            return true;
        }
        (0..self.rank()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// The intersection of two regions, or `None` if they are disjoint or
    /// the result is empty.
    ///
    /// ```
    /// use panda_schema::Region;
    /// let a = Region::new(&[0, 0], &[4, 4]).unwrap();
    /// let b = Region::new(&[2, 1], &[6, 3]).unwrap();
    /// let i = a.intersect(&b).unwrap();
    /// assert_eq!(i.lo(), &[2, 1]);
    /// assert_eq!(i.hi(), &[4, 3]);
    /// assert!(a.intersect(&Region::new(&[4, 0], &[5, 4]).unwrap()).is_none());
    /// ```
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        if self.rank() != other.rank() {
            return None;
        }
        let mut lo = vec![0usize; self.rank()];
        let mut hi = vec![0usize; self.rank()];
        for d in 0..self.rank() {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] >= hi[d] {
                return None;
            }
        }
        Some(Region { lo, hi })
    }

    /// True iff the two regions share at least one index.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.intersect(other).is_some()
    }

    /// Translate the region by subtracting `origin` from both corners,
    /// producing coordinates relative to an enclosing region's lower
    /// corner (used to address a global region inside a chunk buffer).
    ///
    /// # Panics
    /// Panics in debug builds if any corner would go negative.
    pub fn relative_to(&self, origin: &[usize]) -> Region {
        debug_assert_eq!(origin.len(), self.rank());
        let lo: Vec<usize> = self
            .lo
            .iter()
            .zip(origin)
            .map(|(&a, &o)| {
                debug_assert!(a >= o, "region corner underflows origin");
                a - o
            })
            .collect();
        let hi: Vec<usize> = self.hi.iter().zip(origin).map(|(&a, &o)| a - o).collect();
        Region { lo, hi }
    }

    /// Translate the region by adding `origin` to both corners (inverse of
    /// [`Region::relative_to`]).
    pub fn offset_by(&self, origin: &[usize]) -> Region {
        debug_assert_eq!(origin.len(), self.rank());
        Region {
            lo: self.lo.iter().zip(origin).map(|(&a, &o)| a + o).collect(),
            hi: self.hi.iter().zip(origin).map(|(&a, &o)| a + o).collect(),
        }
    }

    /// Iterate the *rows* of the region: maximal runs that are contiguous
    /// along the innermost dimension. Each item is the multi-index of the
    /// row's first element; the row has length `extent(rank-1)`.
    ///
    /// For rank-0 regions a single empty index is yielded (one element).
    pub fn iter_rows(&self) -> RowIter {
        let empty = self.is_empty() && self.rank() > 0;
        RowIter {
            region: self.clone(),
            next: if empty { None } else { Some(self.lo.clone()) },
        }
    }

    /// A human-readable `lo..hi` rendering, e.g. `[0,0)..[4,4)`.
    pub fn display(&self) -> String {
        format!("{:?}..{:?}", self.lo, self.hi)
    }
}

/// Iterator over the start indices of the contiguous innermost rows of a
/// [`Region`]. See [`Region::iter_rows`].
#[derive(Debug)]
pub struct RowIter {
    region: Region,
    next: Option<Vec<usize>>,
}

impl Iterator for RowIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        let rank = self.region.rank();
        if rank <= 1 {
            // A rank-0 or rank-1 region is a single row.
            self.next = None;
            return Some(cur);
        }
        // Advance dimensions rank-2 .. 0 (the innermost dim indexes within
        // a row and is not advanced).
        let mut succ = cur.clone();
        let mut d = rank - 1;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            succ[d] += 1;
            if succ[d] < self.region.hi[d] {
                self.next = Some(succ);
                break;
            }
            succ[d] = self.region.lo[d];
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[usize], hi: &[usize]) -> Region {
        Region::new(lo, hi).unwrap()
    }

    #[test]
    fn new_rejects_inverted_bounds() {
        assert_eq!(
            Region::new(&[2, 0], &[1, 5]).unwrap_err(),
            SchemaError::InvalidRegion { dim: 0 }
        );
    }

    #[test]
    fn new_rejects_rank_mismatch() {
        assert!(matches!(
            Region::new(&[0], &[1, 2]).unwrap_err(),
            SchemaError::RegionRankMismatch { .. }
        ));
    }

    #[test]
    fn emptiness_and_cardinality() {
        assert!(Region::empty(3).is_empty());
        assert_eq!(Region::empty(3).num_elements(), 0);
        let a = r(&[1, 1], &[3, 4]);
        assert!(!a.is_empty());
        assert_eq!(a.num_elements(), 6);
        assert_eq!(a.num_bytes(8), 48);
        // Zero-extent in one dim makes the whole region empty.
        let z = r(&[1, 2], &[3, 2]);
        assert!(z.is_empty());
        assert_eq!(z.num_elements(), 0);
    }

    #[test]
    fn rank0_region_is_scalar() {
        let s = Region::new(&[], &[]).unwrap();
        assert!(!s.is_empty());
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.iter_rows().count(), 1);
    }

    #[test]
    fn intersection_basic() {
        let a = r(&[0, 0], &[4, 4]);
        let b = r(&[2, 3], &[6, 8]);
        assert_eq!(a.intersect(&b), Some(r(&[2, 3], &[4, 4])));
        assert_eq!(b.intersect(&a), a.intersect(&b));
    }

    #[test]
    fn intersection_disjoint_and_touching() {
        let a = r(&[0, 0], &[2, 2]);
        let b = r(&[2, 0], &[4, 2]); // shares only a face
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
        let c = r(&[5, 5], &[7, 7]);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn intersection_with_self_is_identity() {
        let a = r(&[1, 2, 3], &[4, 5, 6]);
        assert_eq!(a.intersect(&a), Some(a.clone()));
    }

    #[test]
    fn containment() {
        let big = r(&[0, 0], &[10, 10]);
        let small = r(&[3, 4], &[5, 9]);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
        assert!(big.contains_region(&Region::empty(2)));
        assert!(big.contains_index(&[9, 9]));
        assert!(!big.contains_index(&[10, 0]));
    }

    #[test]
    fn relative_and_offset_roundtrip() {
        let a = r(&[5, 7], &[9, 11]);
        let rel = a.relative_to(&[5, 6]);
        assert_eq!(rel, r(&[0, 1], &[4, 5]));
        assert_eq!(rel.offset_by(&[5, 6]), a);
    }

    #[test]
    fn iter_rows_covers_region_in_row_major_order() {
        let a = r(&[1, 2, 3], &[3, 4, 6]);
        let rows: Vec<Vec<usize>> = a.iter_rows().collect();
        assert_eq!(
            rows,
            vec![vec![1, 2, 3], vec![1, 3, 3], vec![2, 2, 3], vec![2, 3, 3],]
        );
        // rows × row-length == total elements
        assert_eq!(rows.len() * a.extent(2), a.num_elements());
    }

    #[test]
    fn iter_rows_empty_region_yields_nothing() {
        let z = r(&[1, 2], &[1, 5]);
        assert_eq!(z.iter_rows().count(), 0);
    }

    #[test]
    fn of_shape_covers_everything() {
        let s = Shape::new(&[3, 4]).unwrap();
        let a = Region::of_shape(&s);
        assert_eq!(a.num_elements(), 12);
        assert_eq!(a.shape().unwrap(), s);
    }
}
