//! Data schemas and chunk grids.
//!
//! A [`DataSchema`] is the paper's *schema*: an array shape plus an HPF
//! distribution over a node mesh. It induces a [`ChunkGrid`] — a tiling of
//! the array into rectangular chunks, one per mesh cell. Panda uses two
//! schemas per array: the *memory schema* (how compute nodes hold the
//! array) and the *disk schema* (how chunks are laid out in files). With
//! *natural chunking* the two are identical; when they differ, Panda
//! reorganizes data in flight (paper §2, §3).

use crate::dist::Dist;
use crate::element::ElementType;
use crate::error::SchemaError;
use crate::mesh::Mesh;
use crate::region::Region;
use crate::shape::Shape;

/// A complete array layout: shape × element type × distribution × mesh.
///
/// ```
/// use panda_schema::{DataSchema, ElementType, Mesh, Shape};
/// // The paper's example: 512^3 distributed BLOCK,BLOCK,BLOCK over 4x4x2.
/// let schema = DataSchema::block_all(
///     Shape::new(&[512, 512, 512]).unwrap(),
///     ElementType::F32,
///     Mesh::new(&[4, 4, 2]).unwrap(),
/// ).unwrap();
/// let grid = schema.chunk_grid();
/// assert_eq!(grid.num_chunks(), 32);
/// assert_eq!(grid.chunk_region(0).extents(), vec![128, 128, 256]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSchema {
    shape: Shape,
    elem: ElementType,
    dists: Vec<Dist>,
    mesh: Mesh,
}

impl DataSchema {
    /// Build and validate a schema.
    ///
    /// Requirements:
    /// * `dists.len() == shape.rank()`;
    /// * the mesh rank equals the number of distributed (non-`*`)
    ///   dimensions, matching HPF's mapping of distributed dimensions onto
    ///   mesh axes in order;
    /// * `CYCLIC` directives are rejected here — the Panda chunk model
    ///   requires each node's share to be one rectangular chunk.
    pub fn new(
        shape: Shape,
        elem: ElementType,
        dists: &[Dist],
        mesh: Mesh,
    ) -> Result<Self, SchemaError> {
        if dists.len() != shape.rank() {
            return Err(SchemaError::RankMismatch {
                shape_rank: shape.rank(),
                dist_rank: dists.len(),
            });
        }
        for (dim, d) in dists.iter().enumerate() {
            d.validate()?;
            if matches!(d, Dist::Cyclic(_)) {
                return Err(SchemaError::UnsupportedDistribution { dim });
            }
        }
        let distributed = dists.iter().filter(|d| d.is_distributed()).count();
        if mesh.rank() != distributed {
            return Err(SchemaError::MeshRankMismatch {
                distributed_dims: distributed,
                mesh_rank: mesh.rank(),
            });
        }
        Ok(DataSchema {
            shape,
            elem,
            dists: dists.to_vec(),
            mesh,
        })
    }

    /// Convenience constructor: `BLOCK` in every dimension over the given
    /// mesh (the paper's `BLOCK,BLOCK,BLOCK` memory schemas).
    pub fn block_all(shape: Shape, elem: ElementType, mesh: Mesh) -> Result<Self, SchemaError> {
        let dists = vec![Dist::Block; shape.rank()];
        DataSchema::new(shape, elem, &dists, mesh)
    }

    /// Convenience constructor: `BLOCK` on dimension 0, `*` elsewhere,
    /// over a 1-D mesh of `n` nodes — the paper's *traditional order*
    /// `BLOCK,*,*` disk schema whose per-node files concatenate to a
    /// row-major array file.
    pub fn traditional_order(
        shape: Shape,
        elem: ElementType,
        n: usize,
    ) -> Result<Self, SchemaError> {
        let mut dists = vec![Dist::Star; shape.rank()];
        if shape.rank() > 0 {
            dists[0] = Dist::Block;
        }
        let mesh = if shape.rank() > 0 {
            Mesh::line(n)?
        } else {
            Mesh::new(&[])?
        };
        DataSchema::new(shape, elem, &dists, mesh)
    }

    /// Array shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Element type.
    #[inline]
    pub fn elem(&self) -> ElementType {
        self.elem
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_size(&self) -> usize {
        self.elem.size_bytes()
    }

    /// Per-dimension distribution directives.
    #[inline]
    pub fn dists(&self) -> &[Dist] {
        &self.dists
    }

    /// The node mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Total array size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.shape.num_elements() * self.elem_size()
    }

    /// The chunk grid induced by this schema.
    pub fn chunk_grid(&self) -> ChunkGrid {
        // Map mesh axes onto distributed dimensions in order.
        let mut grid_dims = vec![1usize; self.shape.rank()];
        let mut axis = 0usize;
        for (d, dist) in self.dists.iter().enumerate() {
            if dist.is_distributed() {
                grid_dims[d] = self.mesh.dim(axis);
                axis += 1;
            }
        }
        ChunkGrid {
            array_shape: self.shape.clone(),
            dists: self.dists.clone(),
            grid_shape: Shape::new(&grid_dims).expect("mesh axes are nonzero"),
        }
    }

    /// Human-readable schema description, paper style:
    /// `512x512x512 f64 BLOCK,BLOCK,BLOCK over 4x4x2`.
    pub fn describe(&self) -> String {
        let dims: Vec<String> = self.shape.dims().iter().map(|d| d.to_string()).collect();
        format!(
            "{} {} {} over {}",
            dims.join("x"),
            self.elem,
            crate::dist::dist_vector_name(&self.dists),
            self.mesh
        )
    }
}

/// The tiling of an array into rectangular chunks induced by a schema.
///
/// Chunk coordinates live on a grid with one axis per array dimension
/// (`*` dimensions have grid extent 1). Chunks are numbered by the
/// row-major linearization of their grid coordinates; for a memory schema
/// chunk number == client rank, and for a disk schema chunk numbers are
/// dealt round-robin to servers (paper §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGrid {
    array_shape: Shape,
    dists: Vec<Dist>,
    grid_shape: Shape,
}

impl ChunkGrid {
    /// Shape of the chunk grid (one axis per array dimension).
    #[inline]
    pub fn grid_shape(&self) -> &Shape {
        &self.grid_shape
    }

    /// Shape of the underlying array.
    #[inline]
    pub fn array_shape(&self) -> &Shape {
        &self.array_shape
    }

    /// Total number of chunks (== number of mesh cells).
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.grid_shape.num_elements()
    }

    /// Grid coordinates of chunk `idx`.
    pub fn chunk_coords(&self, idx: usize) -> Vec<usize> {
        self.grid_shape.delinearize(idx)
    }

    /// Linear chunk number of the given grid coordinates.
    pub fn chunk_index(&self, coords: &[usize]) -> usize {
        self.grid_shape.linearize(coords)
    }

    /// The array region owned by chunk `idx`. May be empty when a `BLOCK`
    /// split does not divide the extent and this grid cell falls off the
    /// end of the array.
    pub fn chunk_region(&self, idx: usize) -> Region {
        let coords = self.chunk_coords(idx);
        self.chunk_region_at(&coords)
    }

    /// The array region owned by the chunk at `coords`.
    pub fn chunk_region_at(&self, coords: &[usize]) -> Region {
        debug_assert_eq!(coords.len(), self.grid_shape.rank());
        let rank = self.array_shape.rank();
        let mut lo = vec![0usize; rank];
        let mut hi = vec![0usize; rank];
        for d in 0..rank {
            let n = self.array_shape.dim(d);
            let parts = self.grid_shape.dim(d);
            let (l, h) = self.dists[d]
                .block_interval(n, coords[d], parts)
                .expect("cyclic rejected at schema construction");
            lo[d] = l;
            hi[d] = h;
        }
        Region::new(&lo, &hi).expect("block intervals are well-formed")
    }

    /// The chunk numbers whose regions intersect `region`, in increasing
    /// (row-major grid) order. Empty chunks never intersect anything.
    pub fn chunks_intersecting(&self, region: &Region) -> Vec<usize> {
        if region.rank() != self.array_shape.rank() || region.is_empty() {
            return Vec::new();
        }
        // Per-dimension range of grid coordinates that can overlap.
        let rank = self.array_shape.rank();
        let mut clo = vec![0usize; rank];
        let mut chi = vec![0usize; rank];
        for d in 0..rank {
            let n = self.array_shape.dim(d);
            let parts = self.grid_shape.dim(d);
            match self.dists[d] {
                Dist::Star => {
                    clo[d] = 0;
                    chi[d] = 1;
                }
                Dist::Block => {
                    let b = n.div_ceil(parts);
                    let lo = region.lo()[d].min(n.saturating_sub(1));
                    let hi = region.hi()[d].min(n);
                    if hi == 0 {
                        return Vec::new();
                    }
                    clo[d] = lo / b;
                    chi[d] = ((hi - 1) / b + 1).min(parts);
                }
                Dist::Cyclic(_) => unreachable!("cyclic rejected at schema construction"),
            }
            if clo[d] >= chi[d] {
                return Vec::new();
            }
        }
        // Enumerate the sub-grid in row-major order.
        let sub = Region::new(&clo, &chi).expect("well-formed coordinate box");
        let mut out = Vec::new();
        let mut coords = clo.clone();
        loop {
            // Confirm the candidate actually overlaps (guards the edge
            // case of short trailing blocks).
            let idx = self.chunk_index(&coords);
            if self.chunk_region_at(&coords).overlaps(region) {
                out.push(idx);
            }
            // Advance row-major within [clo, chi).
            let mut d = rank;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < sub.hi()[d] {
                    break;
                }
                coords[d] = sub.lo()[d];
            }
        }
    }

    /// The chunk that owns a global index.
    pub fn chunk_of_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.array_shape.rank());
        let rank = self.array_shape.rank();
        let mut coords = vec![0usize; rank];
        for d in 0..rank {
            let n = self.array_shape.dim(d);
            let parts = self.grid_shape.dim(d);
            coords[d] = match self.dists[d] {
                Dist::Star => 0,
                Dist::Block => {
                    let b = n.div_ceil(parts);
                    idx[d] / b
                }
                Dist::Cyclic(_) => unreachable!("cyclic rejected at schema construction"),
            };
        }
        self.chunk_index(&coords)
    }

    /// Iterate `(chunk_index, region)` for all chunks in row-major order,
    /// including empty regions.
    pub fn iter_chunks(&self) -> impl Iterator<Item = (usize, Region)> + '_ {
        (0..self.num_chunks()).map(move |i| (i, self.chunk_region(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(shape: &[usize], dists: &[Dist], mesh: &[usize]) -> DataSchema {
        DataSchema::new(
            Shape::new(shape).unwrap(),
            ElementType::F64,
            dists,
            Mesh::new(mesh).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_rank_mismatch() {
        let err = DataSchema::new(
            Shape::new(&[4, 4]).unwrap(),
            ElementType::F64,
            &[Dist::Block],
            Mesh::line(2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::RankMismatch { .. }));
    }

    #[test]
    fn rejects_mesh_rank_mismatch() {
        let err = DataSchema::new(
            Shape::new(&[4, 4]).unwrap(),
            ElementType::F64,
            &[Dist::Block, Dist::Star],
            Mesh::new(&[2, 2]).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::MeshRankMismatch { .. }));
    }

    #[test]
    fn rejects_cyclic() {
        let err = DataSchema::new(
            Shape::new(&[4]).unwrap(),
            ElementType::F64,
            &[Dist::Cyclic(1)],
            Mesh::line(2).unwrap(),
        )
        .unwrap_err();
        assert_eq!(err, SchemaError::UnsupportedDistribution { dim: 0 });
    }

    #[test]
    fn block_block_block_grid_matches_mesh() {
        // Paper: 512^3 over a 4x4x2 mesh → 32 chunks of 128x128x256.
        let s = schema(
            &[512, 512, 512],
            &[Dist::Block, Dist::Block, Dist::Block],
            &[4, 4, 2],
        );
        let g = s.chunk_grid();
        assert_eq!(g.num_chunks(), 32);
        let r0 = g.chunk_region(0);
        assert_eq!(r0.extents(), vec![128, 128, 256]);
        // Every chunk has equal volume here.
        for (_, r) in g.iter_chunks() {
            assert_eq!(r.num_elements(), 128 * 128 * 256);
        }
    }

    #[test]
    fn traditional_order_grid() {
        // BLOCK,*,* over 8 i/o nodes: 8 slabs of 64 planes each.
        let s = DataSchema::traditional_order(
            Shape::new(&[512, 512, 512]).unwrap(),
            ElementType::F64,
            8,
        )
        .unwrap();
        let g = s.chunk_grid();
        assert_eq!(g.num_chunks(), 8);
        assert_eq!(g.chunk_region(3).lo(), &[192, 0, 0]);
        assert_eq!(g.chunk_region(3).hi(), &[256, 512, 512]);
    }

    #[test]
    fn chunks_tile_array_disjointly() {
        for (shape, dists, mesh) in [
            (
                vec![10usize, 7],
                vec![Dist::Block, Dist::Block],
                vec![3usize, 2],
            ),
            (
                vec![5, 9, 4],
                vec![Dist::Block, Dist::Star, Dist::Block],
                vec![2, 3],
            ),
            (vec![16], vec![Dist::Block], vec![5]),
            (vec![3], vec![Dist::Block], vec![7]), // more parts than elements
        ] {
            let s = schema(&shape, &dists, &mesh);
            let g = s.chunk_grid();
            let total: usize = g.iter_chunks().map(|(_, r)| r.num_elements()).sum();
            assert_eq!(total, s.shape().num_elements(), "tiles cover exactly once");
            // Disjointness: every index maps to exactly one owning chunk.
            for idx in s.shape().iter_indices() {
                let owner = g.chunk_of_index(&idx);
                assert!(g.chunk_region(owner).contains_index(&idx));
                let owners = g
                    .iter_chunks()
                    .filter(|(_, r)| r.contains_index(&idx))
                    .count();
                assert_eq!(owners, 1);
            }
        }
    }

    #[test]
    fn chunks_intersecting_matches_bruteforce() {
        let s = schema(&[12, 10], &[Dist::Block, Dist::Block], &[4, 3]);
        let g = s.chunk_grid();
        let probes = [
            Region::new(&[0, 0], &[12, 10]).unwrap(),
            Region::new(&[2, 3], &[7, 8]).unwrap(),
            Region::new(&[11, 9], &[12, 10]).unwrap(),
            Region::new(&[3, 0], &[3, 10]).unwrap(), // empty
        ];
        for probe in &probes {
            let fast = g.chunks_intersecting(probe);
            let slow: Vec<usize> = g
                .iter_chunks()
                .filter(|(_, r)| r.overlaps(probe))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "probe {}", probe.display());
        }
    }

    #[test]
    fn chunks_intersecting_skips_empty_trailing_chunks() {
        // n=3 over 7 parts: only 3 nonempty chunks exist.
        let s = schema(&[3], &[Dist::Block], &[7]);
        let g = s.chunk_grid();
        let all = Region::new(&[0], &[3]).unwrap();
        assert_eq!(g.chunks_intersecting(&all), vec![0, 1, 2]);
    }

    #[test]
    fn describe_is_paper_style() {
        let s = schema(
            &[512, 512, 512],
            &[Dist::Block, Dist::Star, Dist::Star],
            &[8],
        );
        assert_eq!(s.describe(), "512x512x512 f64 BLOCK,*,* over 8");
    }

    #[test]
    fn block_all_and_total_bytes() {
        let s = DataSchema::block_all(
            Shape::new(&[256, 256, 256]).unwrap(),
            ElementType::F64,
            Mesh::new(&[2, 2, 2]).unwrap(),
        )
        .unwrap();
        assert_eq!(s.total_bytes(), 256 * 256 * 256 * 8);
        assert_eq!(s.chunk_grid().num_chunks(), 8);
    }
}
