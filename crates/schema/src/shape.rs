//! Array shapes and row-major index arithmetic.

use crate::error::SchemaError;

/// The extents of an n-dimensional array.
///
/// Dimension 0 is the slowest-varying ("outermost") dimension, matching the
/// traditional row-major ("C") order the paper calls *traditional array
/// order*. A `Shape` is also used for chunk grids and processor meshes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from per-dimension extents.
    ///
    /// All extents must be nonzero; rank-0 (scalar) shapes are permitted
    /// and have one element.
    pub fn new(dims: &[usize]) -> Result<Self, SchemaError> {
        for (d, &n) in dims.iter().enumerate() {
            if n == 0 {
                return Err(SchemaError::ZeroExtent { dim: d });
            }
        }
        Ok(Shape {
            dims: dims.to_vec(),
        })
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Total number of elements (product of extents).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements: `strides[d]` is the distance between
    /// consecutive indices along dimension `d`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.dims[d + 1];
        }
        s
    }

    /// Linearize a multi-index into a row-major offset.
    ///
    /// # Panics
    /// Panics in debug builds if `idx` is out of bounds or has wrong rank.
    #[inline]
    pub fn linearize(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.dims[d], "index {i} out of bounds in dim {d}");
            off = off * self.dims[d] + i;
        }
        off
    }

    /// Invert [`Shape::linearize`]: convert a row-major offset back into a
    /// multi-index.
    pub fn delinearize(&self, mut off: usize) -> Vec<usize> {
        debug_assert!(off < self.num_elements().max(1));
        let mut idx = vec![0usize; self.rank()];
        for d in (0..self.rank()).rev() {
            idx[d] = off % self.dims[d];
            off /= self.dims[d];
        }
        idx
    }

    /// Iterate all multi-indices in row-major order.
    pub fn iter_indices(&self) -> IndexIter {
        IndexIter {
            shape: self.dims.clone(),
            next: if self.num_elements() == 0 {
                None
            } else {
                Some(vec![0; self.rank()])
            },
        }
    }
}

/// Iterator over all multi-indices of a [`Shape`] in row-major order.
#[derive(Debug)]
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance to the successor in row-major order.
        let mut succ = cur.clone();
        let mut d = self.shape.len();
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            succ[d] += 1;
            if succ[d] < self.shape[d] {
                self.next = Some(succ);
                break;
            }
            succ[d] = 0;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_extent() {
        assert_eq!(
            Shape::new(&[4, 0, 2]).unwrap_err(),
            SchemaError::ZeroExtent { dim: 1 }
        );
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]).unwrap();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.linearize(&[]), 0);
        assert_eq!(s.delinearize(0), Vec::<usize>::new());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn linearize_roundtrips_with_delinearize() {
        let s = Shape::new(&[3, 5, 7]).unwrap();
        for off in 0..s.num_elements() {
            let idx = s.delinearize(off);
            assert_eq!(s.linearize(&idx), off);
        }
    }

    #[test]
    fn linearize_matches_stride_dot_product() {
        let s = Shape::new(&[4, 6, 5]).unwrap();
        let strides = s.strides();
        for idx in s.iter_indices() {
            let dot: usize = idx.iter().zip(&strides).map(|(i, st)| i * st).sum();
            assert_eq!(s.linearize(&idx), dot);
        }
    }

    #[test]
    fn iter_indices_is_row_major_and_complete() {
        let s = Shape::new(&[2, 3]).unwrap();
        let all: Vec<Vec<usize>> = s.iter_indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn iter_indices_scalar() {
        let s = Shape::new(&[]).unwrap();
        let all: Vec<Vec<usize>> = s.iter_indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }
}
