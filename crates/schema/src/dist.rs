//! HPF-style per-dimension distribution directives.
//!
//! The paper supports "HPF-style BLOCK- and *-based array schemas"
//! (paper §2). We implement those two faithfully and add `BLOCK-CYCLIC`
//! as the extension the Panda group lists under future schema work
//! (\[Seamons94a\] studies general physical schemas).

use crate::error::SchemaError;

/// How one array dimension is divided across one mesh axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// HPF `BLOCK`: the dimension is cut into `p` contiguous blocks of
    /// `ceil(n/p)` indices; trailing blocks may be short or empty.
    Block,
    /// HPF `*` (called `NONE` in the paper's Figure 2): the dimension is
    /// not distributed; every mesh cell sees its full extent.
    Star,
    /// HPF `CYCLIC(b)`: blocks of `b` indices are dealt round-robin across
    /// the mesh axis. `Cyclic(1)` is classic cyclic distribution.
    ///
    /// Extension beyond the paper (Panda 2.0 itself only ships `BLOCK`
    /// and `*`); supported by the geometry layer so future schema work
    /// has a substrate, but rejected by the chunk-grid builder which
    /// requires rectangular chunks.
    Cyclic(usize),
}

impl Dist {
    /// True iff this directive consumes a mesh axis.
    #[inline]
    pub fn is_distributed(self) -> bool {
        !matches!(self, Dist::Star)
    }

    /// Validate the directive itself.
    pub fn validate(self) -> Result<(), SchemaError> {
        match self {
            Dist::Cyclic(0) => Err(SchemaError::ZeroCyclicBlock),
            _ => Ok(()),
        }
    }

    /// The half-open index interval of dimension extent `n` owned by mesh
    /// coordinate `part` out of `parts`, for this directive.
    ///
    /// For `BLOCK` this is the contiguous interval `[part*b, min((part+1)*b, n))`
    /// with `b = ceil(n/parts)`; the interval is empty when `part*b >= n`.
    /// For `*` it is always `[0, n)`. `CYCLIC` owns a non-contiguous set
    /// and therefore has no single interval; callers must treat it
    /// specially (the chunk grid rejects it).
    pub fn block_interval(self, n: usize, part: usize, parts: usize) -> Option<(usize, usize)> {
        assert!(parts > 0, "mesh axis must have at least one cell");
        assert!(part < parts, "mesh coordinate out of range");
        match self {
            Dist::Star => Some((0, n)),
            Dist::Block => {
                let b = n.div_ceil(parts);
                let lo = (part * b).min(n);
                let hi = ((part + 1) * b).min(n);
                Some((lo, hi))
            }
            Dist::Cyclic(_) => None,
        }
    }

    /// A short HPF-like rendering: `BLOCK`, `*`, `CYCLIC(b)`.
    pub fn name(self) -> String {
        match self {
            Dist::Block => "BLOCK".to_string(),
            Dist::Star => "*".to_string(),
            Dist::Cyclic(b) => format!("CYCLIC({b})"),
        }
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Render a distribution vector the way the paper writes schemas,
/// e.g. `BLOCK,BLOCK,*`.
pub fn dist_vector_name(dists: &[Dist]) -> String {
    dists.iter().map(|d| d.name()).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_intervals_tile_the_dimension() {
        for n in [1usize, 5, 8, 100, 513] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_hi = 0usize;
                for part in 0..parts {
                    let (lo, hi) = Dist::Block.block_interval(n, part, parts).unwrap();
                    assert!(lo <= hi);
                    assert_eq!(lo, prev_hi.min(n), "blocks must be adjacent");
                    prev_hi = hi;
                    covered += hi - lo;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn block_trailing_parts_can_be_empty() {
        // n=4, parts=3 → b=2 → [0,2) [2,4) [4,4)
        assert_eq!(Dist::Block.block_interval(4, 2, 3), Some((4, 4)));
        // n=2, parts=4 → b=1 → last two parts empty
        assert_eq!(Dist::Block.block_interval(2, 3, 4), Some((2, 2)));
    }

    #[test]
    fn star_owns_everything() {
        for part in 0..3 {
            assert_eq!(Dist::Star.block_interval(10, part, 3), Some((0, 10)));
        }
    }

    #[test]
    fn cyclic_has_no_single_interval() {
        assert_eq!(Dist::Cyclic(2).block_interval(10, 0, 2), None);
    }

    #[test]
    fn cyclic_zero_block_is_invalid() {
        assert_eq!(
            Dist::Cyclic(0).validate().unwrap_err(),
            SchemaError::ZeroCyclicBlock
        );
        assert!(Dist::Cyclic(3).validate().is_ok());
        assert!(Dist::Block.validate().is_ok());
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(
            dist_vector_name(&[Dist::Block, Dist::Block, Dist::Star]),
            "BLOCK,BLOCK,*"
        );
    }

    #[test]
    fn distributedness() {
        assert!(Dist::Block.is_distributed());
        assert!(Dist::Cyclic(1).is_distributed());
        assert!(!Dist::Star.is_distributed());
    }
}
