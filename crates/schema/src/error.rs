//! Error type shared by the geometry substrate.

use std::fmt;

/// Errors raised while constructing or validating array schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The array rank and the distribution vector rank disagree.
    RankMismatch {
        /// Rank implied by the array shape.
        shape_rank: usize,
        /// Rank implied by the distribution vector.
        dist_rank: usize,
    },
    /// The processor mesh rank does not equal the number of distributed
    /// (non-`*`) dimensions.
    MeshRankMismatch {
        /// Number of `BLOCK`/`CYCLIC` dimensions in the distribution.
        distributed_dims: usize,
        /// Rank of the supplied mesh.
        mesh_rank: usize,
    },
    /// A shape or mesh dimension was zero.
    ZeroExtent {
        /// Which dimension was zero.
        dim: usize,
    },
    /// A region had `lo > hi` in some dimension.
    InvalidRegion {
        /// Which dimension was inverted.
        dim: usize,
    },
    /// Two regions expected to have equal rank did not.
    RegionRankMismatch {
        /// Rank of the left-hand region.
        left: usize,
        /// Rank of the right-hand region.
        right: usize,
    },
    /// A buffer passed to a copy kernel was smaller than its region
    /// requires.
    BufferTooSmall {
        /// Bytes required by the region.
        required: usize,
        /// Bytes actually supplied.
        actual: usize,
    },
    /// A sub-region was not contained in its enclosing region.
    RegionNotContained,
    /// A block-cyclic distribution had a zero block size.
    ZeroCyclicBlock,
    /// A subchunk byte limit of zero was requested.
    ZeroSubchunkLimit,
    /// The distribution directive is valid but not supported by this
    /// component (e.g. `CYCLIC` in the rectangular chunk-grid builder).
    UnsupportedDistribution {
        /// Which array dimension carried the unsupported directive.
        dim: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::RankMismatch {
                shape_rank,
                dist_rank,
            } => write!(
                f,
                "distribution rank {dist_rank} does not match array rank {shape_rank}"
            ),
            SchemaError::MeshRankMismatch {
                distributed_dims,
                mesh_rank,
            } => write!(
                f,
                "mesh rank {mesh_rank} does not match the {distributed_dims} distributed dimensions"
            ),
            SchemaError::ZeroExtent { dim } => {
                write!(f, "dimension {dim} has zero extent")
            }
            SchemaError::InvalidRegion { dim } => {
                write!(f, "region has lo > hi in dimension {dim}")
            }
            SchemaError::RegionRankMismatch { left, right } => {
                write!(f, "region ranks differ: {left} vs {right}")
            }
            SchemaError::BufferTooSmall { required, actual } => {
                write!(f, "buffer too small: need {required} bytes, got {actual}")
            }
            SchemaError::RegionNotContained => {
                write!(f, "sub-region is not contained in its enclosing region")
            }
            SchemaError::ZeroCyclicBlock => {
                write!(f, "block-cyclic distribution requires a nonzero block size")
            }
            SchemaError::ZeroSubchunkLimit => {
                write!(f, "subchunk byte limit must be nonzero")
            }
            SchemaError::UnsupportedDistribution { dim } => {
                write!(
                    f,
                    "distribution directive on dimension {dim} is not supported here"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SchemaError::RankMismatch {
            shape_rank: 3,
            dist_rank: 2,
        };
        assert!(e.to_string().contains("rank 2"));
        assert!(e.to_string().contains("rank 3"));
        let e = SchemaError::BufferTooSmall {
            required: 10,
            actual: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SchemaError::ZeroExtent { dim: 1 },
            SchemaError::ZeroExtent { dim: 1 }
        );
        assert_ne!(
            SchemaError::ZeroExtent { dim: 1 },
            SchemaError::ZeroExtent { dim: 2 }
        );
    }
}
