//! Geometry for `CYCLIC(b)` distributions — substrate for future
//! schema work.
//!
//! Panda 2.0 ships `BLOCK`/`*` schemas only, and the rectangular
//! [`crate::ChunkGrid`] model depends on each mesh cell owning one box.
//! Under HPF `CYCLIC(b)` a cell owns *many* boxes: the cross product of
//! its per-dimension interval sets. This module provides that
//! generalized ownership — interval enumeration, block enumeration in a
//! canonical order, and membership/intersection queries — with the
//! tiling invariants tested, so a future block-cyclic Panda has a
//! verified geometric foundation. Nothing in the runtime or the
//! performance model depends on it yet.

use crate::dist::Dist;
use crate::error::SchemaError;
use crate::mesh::Mesh;
use crate::region::Region;
use crate::shape::Shape;

/// The half-open intervals of a dimension of extent `n` owned by mesh
/// coordinate `part` out of `parts` under `dist`, in ascending order.
/// Empty intervals are omitted.
pub fn owned_intervals(dist: Dist, n: usize, part: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0 && part < parts);
    match dist {
        Dist::Star => vec![(0, n)],
        Dist::Block => {
            let (lo, hi) = dist
                .block_interval(n, part, parts)
                .expect("block has an interval");
            if lo < hi {
                vec![(lo, hi)]
            } else {
                Vec::new()
            }
        }
        Dist::Cyclic(b) => {
            assert!(b > 0, "validated by Dist::validate");
            let mut out = Vec::new();
            let mut start = part * b;
            while start < n {
                out.push((start, (start + b).min(n)));
                start += parts * b;
            }
            out
        }
    }
}

/// All rectangular blocks owned by one mesh cell under a (possibly
/// cyclic) distribution, in lexicographic order of per-dimension
/// interval indices. Together with
/// [`Region::num_elements`] this fully describes the cell's packed
/// local buffer layout (blocks concatenated, each row-major).
pub fn owned_blocks(
    shape: &Shape,
    dists: &[Dist],
    mesh: &Mesh,
    cell: usize,
) -> Result<Vec<Region>, SchemaError> {
    if dists.len() != shape.rank() {
        return Err(SchemaError::RankMismatch {
            shape_rank: shape.rank(),
            dist_rank: dists.len(),
        });
    }
    for d in dists {
        d.validate()?;
    }
    let distributed = dists.iter().filter(|d| d.is_distributed()).count();
    if mesh.rank() != distributed {
        return Err(SchemaError::MeshRankMismatch {
            distributed_dims: distributed,
            mesh_rank: mesh.rank(),
        });
    }
    let coords = mesh.coords_of(cell);

    // Per-dimension interval lists.
    let mut per_dim: Vec<Vec<(usize, usize)>> = Vec::with_capacity(shape.rank());
    let mut axis = 0usize;
    for (d, dist) in dists.iter().enumerate() {
        let (part, parts) = if dist.is_distributed() {
            let p = (coords[axis], mesh.dim(axis));
            axis += 1;
            p
        } else {
            (0, 1)
        };
        let intervals = owned_intervals(*dist, shape.dim(d), part, parts);
        if intervals.is_empty() {
            return Ok(Vec::new()); // cell owns nothing
        }
        per_dim.push(intervals);
    }

    // Cross product in lexicographic order.
    let mut blocks = Vec::new();
    let mut idx = vec![0usize; shape.rank()];
    loop {
        let lo: Vec<usize> = idx
            .iter()
            .enumerate()
            .map(|(d, &i)| per_dim[d][i].0)
            .collect();
        let hi: Vec<usize> = idx
            .iter()
            .enumerate()
            .map(|(d, &i)| per_dim[d][i].1)
            .collect();
        blocks.push(Region::new(&lo, &hi).expect("intervals are well-formed"));
        // Odometer.
        let mut d = shape.rank();
        loop {
            if d == 0 {
                return Ok(blocks);
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < per_dim[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Total elements owned by a cell (sum over its blocks).
pub fn owned_elements(
    shape: &Shape,
    dists: &[Dist],
    mesh: &Mesh,
    cell: usize,
) -> Result<usize, SchemaError> {
    Ok(owned_blocks(shape, dists, mesh, cell)?
        .iter()
        .map(|b| b.num_elements())
        .sum())
}

/// The mesh cell that owns global index `idx` under a (possibly
/// cyclic) distribution.
pub fn owner_of_index(
    shape: &Shape,
    dists: &[Dist],
    mesh: &Mesh,
    idx: &[usize],
) -> Result<usize, SchemaError> {
    if dists.len() != shape.rank() || idx.len() != shape.rank() {
        return Err(SchemaError::RankMismatch {
            shape_rank: shape.rank(),
            dist_rank: dists.len(),
        });
    }
    let mut coords = Vec::with_capacity(mesh.rank());
    for (d, dist) in dists.iter().enumerate() {
        if !dist.is_distributed() {
            continue;
        }
        let parts = mesh.dim(coords.len());
        let n = shape.dim(d);
        let part = match *dist {
            Dist::Star => unreachable!("filtered above"),
            Dist::Block => {
                let b = n.div_ceil(parts);
                idx[d] / b
            }
            Dist::Cyclic(b) => (idx[d] / b) % parts,
        };
        coords.push(part);
    }
    Ok(mesh.rank_of(&coords))
}

/// The portions of `probe` owned by `cell`: intersections of the probe
/// with each of the cell's blocks, in block order.
pub fn cell_intersections(
    shape: &Shape,
    dists: &[Dist],
    mesh: &Mesh,
    cell: usize,
    probe: &Region,
) -> Result<Vec<Region>, SchemaError> {
    Ok(owned_blocks(shape, dists, mesh, cell)?
        .iter()
        .filter_map(|b| b.intersect(probe))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dims: &[usize], dists: &[Dist], mesh: &[usize]) -> (Shape, Vec<Dist>, Mesh) {
        (
            Shape::new(dims).unwrap(),
            dists.to_vec(),
            Mesh::new(mesh).unwrap(),
        )
    }

    #[test]
    fn cyclic_intervals_wrap_round_robin() {
        // n=10, b=2, parts=3: part 0 owns [0,2) [6,8); part 1 [2,4)
        // [8,10); part 2 [4,6).
        assert_eq!(
            owned_intervals(Dist::Cyclic(2), 10, 0, 3),
            vec![(0, 2), (6, 8)]
        );
        assert_eq!(
            owned_intervals(Dist::Cyclic(2), 10, 1, 3),
            vec![(2, 4), (8, 10)]
        );
        assert_eq!(owned_intervals(Dist::Cyclic(2), 10, 2, 3), vec![(4, 6)]);
    }

    #[test]
    fn cyclic_intervals_tile_every_dimension() {
        for n in [1usize, 7, 16, 100] {
            for b in [1usize, 2, 3, 5] {
                for parts in [1usize, 2, 3, 4] {
                    let mut covered = vec![false; n];
                    for part in 0..parts {
                        for (lo, hi) in owned_intervals(Dist::Cyclic(b), n, part, parts) {
                            for flag in &mut covered[lo..hi] {
                                assert!(!*flag, "n={n} b={b} parts={parts}");
                                *flag = true;
                            }
                        }
                    }
                    assert!(covered.iter().all(|&c| c), "n={n} b={b} parts={parts}");
                }
            }
        }
    }

    #[test]
    fn block_and_star_reduce_to_single_intervals() {
        assert_eq!(owned_intervals(Dist::Block, 10, 1, 3), vec![(4, 8)]);
        assert_eq!(owned_intervals(Dist::Star, 10, 0, 1), vec![(0, 10)]);
        // Empty trailing block is omitted entirely.
        assert_eq!(
            owned_intervals(Dist::Block, 2, 3, 4),
            Vec::<(usize, usize)>::new()
        );
    }

    #[test]
    fn owned_blocks_tile_the_array() {
        for (dims, dists, mesh_dims) in [
            (
                vec![8usize, 9],
                vec![Dist::Cyclic(2), Dist::Block],
                vec![2usize, 3],
            ),
            (
                vec![10, 6],
                vec![Dist::Cyclic(3), Dist::Cyclic(1)],
                vec![2, 2],
            ),
            (
                vec![5, 4, 3],
                vec![Dist::Cyclic(1), Dist::Star, Dist::Block],
                vec![3, 2],
            ),
        ] {
            let (shape, dists, mesh) = setup(&dims, &dists, &mesh_dims);
            let mut covered = vec![0u32; shape.num_elements()];
            let mut total = 0usize;
            for cell in 0..mesh.num_nodes() {
                let blocks = owned_blocks(&shape, &dists, &mesh, cell).unwrap();
                assert_eq!(
                    owned_elements(&shape, &dists, &mesh, cell).unwrap(),
                    blocks.iter().map(|b| b.num_elements()).sum::<usize>()
                );
                for block in &blocks {
                    total += block.num_elements();
                    let bshape = block.shape().unwrap();
                    for local in bshape.iter_indices() {
                        let global: Vec<usize> =
                            local.iter().zip(block.lo()).map(|(&l, &o)| l + o).collect();
                        covered[shape.linearize(&global)] += 1;
                        // Ownership query agrees.
                        assert_eq!(
                            owner_of_index(&shape, &dists, &mesh, &global).unwrap(),
                            cell
                        );
                    }
                }
            }
            assert_eq!(total, shape.num_elements());
            assert!(covered.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn blocks_are_lexicographically_ordered() {
        let (shape, dists, mesh) = setup(&[8, 8], &[Dist::Cyclic(2), Dist::Cyclic(2)], &[2, 2]);
        let blocks = owned_blocks(&shape, &dists, &mesh, 0).unwrap();
        assert_eq!(blocks.len(), 4); // 2 row-bands x 2 col-bands
        let lows: Vec<Vec<usize>> = blocks.iter().map(|b| b.lo().to_vec()).collect();
        let mut sorted = lows.clone();
        sorted.sort();
        assert_eq!(lows, sorted);
    }

    #[test]
    fn cell_intersections_match_bruteforce() {
        let (shape, dists, mesh) = setup(&[9, 7], &[Dist::Cyclic(2), Dist::Block], &[3, 2]);
        let probe = Region::new(&[1, 1], &[8, 6]).unwrap();
        for cell in 0..mesh.num_nodes() {
            let parts = cell_intersections(&shape, &dists, &mesh, cell, &probe).unwrap();
            let expect: usize = shape
                .iter_indices()
                .filter(|idx| {
                    probe.contains_index(idx)
                        && owner_of_index(&shape, &dists, &mesh, idx).unwrap() == cell
                })
                .count();
            let got: usize = parts.iter().map(|r| r.num_elements()).sum();
            assert_eq!(got, expect, "cell {cell}");
        }
    }

    #[test]
    fn rank_mismatch_rejected() {
        let shape = Shape::new(&[4, 4]).unwrap();
        let mesh = Mesh::line(2).unwrap();
        assert!(owned_blocks(&shape, &[Dist::Block], &mesh, 0).is_err());
        let mesh2 = Mesh::new(&[2, 2]).unwrap();
        assert!(owned_blocks(&shape, &[Dist::Block, Dist::Star], &mesh2, 0).is_err());
    }

    #[test]
    fn cells_can_own_nothing() {
        // n=2 cyclic(1) over 4 parts: cells 2 and 3 own nothing.
        let (shape, dists, mesh) = setup(&[2], &[Dist::Cyclic(1)], &[4]);
        assert!(owned_blocks(&shape, &dists, &mesh, 2).unwrap().is_empty());
        assert_eq!(owned_elements(&shape, &dists, &mesh, 0).unwrap(), 1);
    }
}
