//! Property-based tests for the geometry substrate.
//!
//! These verify the invariants the Panda protocol relies on:
//! chunk grids tile arrays exactly; subchunk splits tile chunks and
//! respect the byte cap; region intersection agrees with a brute-force
//! oracle; gather/scatter copies are lossless.

use proptest::prelude::*;

use panda_schema::{
    copy, pack_region, split_into_subchunks, unpack_region, DataSchema, Dist, ElementType, Mesh,
    Region, Shape,
};

/// Strategy: a shape of rank 1..=4 with small extents.
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=9, 1..=4)
}

/// Strategy: a (shape, dists, mesh) triple that forms a valid schema.
fn schema_strategy() -> impl Strategy<Value = DataSchema> {
    small_shape()
        .prop_flat_map(|shape| {
            let rank = shape.len();
            let dists = prop::collection::vec(
                prop_oneof![Just(Dist::Block), Just(Dist::Star)],
                rank..=rank,
            );
            (Just(shape), dists)
        })
        .prop_flat_map(|(shape, dists)| {
            let distributed = dists.iter().filter(|d| d.is_distributed()).count();
            let mesh_dims = prop::collection::vec(1usize..=4, distributed..=distributed);
            (Just(shape), Just(dists), mesh_dims)
        })
        .prop_map(|(shape, dists, mesh_dims)| {
            DataSchema::new(
                Shape::new(&shape).unwrap(),
                ElementType::U8,
                &dists,
                Mesh::new(&mesh_dims).unwrap(),
            )
            .unwrap()
        })
}

/// Strategy: a region inside the given shape (possibly empty).
#[allow(dead_code)] // kept as a reusable strategy for future properties
fn region_in(dims: Vec<usize>) -> impl Strategy<Value = Region> {
    let per_dim: Vec<_> = dims
        .iter()
        .map(|&n| (0..=n).prop_flat_map(move |lo| (Just(lo), lo..=n)))
        .collect();
    per_dim.prop_map(|bounds| {
        let lo: Vec<usize> = bounds.iter().map(|&(l, _)| l).collect();
        let hi: Vec<usize> = bounds.iter().map(|&(_, h)| h).collect();
        Region::new(&lo, &hi).unwrap()
    })
}

/// Per-element reference for the blocked copy kernels: move `portion`
/// one element at a time via `offset_in_region` on both sides. Slow and
/// obviously correct — the blocked kernels must match it byte for byte.
fn naive_copy(src: &[u8], a: &Region, dst: &mut [u8], b: &Region, portion: &Region, elem: usize) {
    let shape = portion.shape().unwrap();
    for local in shape.iter_indices() {
        let global: Vec<usize> = local
            .iter()
            .zip(portion.lo())
            .map(|(&l, &o)| l + o)
            .collect();
        let so = copy::offset_in_region(a, &global, elem);
        let doff = copy::offset_in_region(b, &global, elem);
        dst[doff..doff + elem].copy_from_slice(&src[so..so + elem]);
    }
}

/// A (src, dst, portion) triple derived from a seed: the portion has the
/// given extents and the enclosing regions grow around it by independent
/// per-dim margins, so runs are partial, strides odd, and some dims
/// singleton.
fn enclosing_pair(dims: &[usize], seed: u64) -> (Region, Region, Region) {
    let s = seed as usize;
    let rank = dims.len();
    let p_lo: Vec<usize> = (0..rank).map(|d| (s + d * 5) % 7).collect();
    let p_hi: Vec<usize> = (0..rank).map(|d| p_lo[d] + dims[d]).collect();
    let grow = |salt: usize| -> (Vec<usize>, Vec<usize>) {
        let lo: Vec<usize> = (0..rank)
            .map(|d| p_lo[d].saturating_sub((s / (salt + d + 2)) % 4))
            .collect();
        let hi: Vec<usize> = (0..rank)
            .map(|d| p_hi[d] + (s / (salt + d + 3)) % 4)
            .collect();
        (lo, hi)
    };
    let (a_lo, a_hi) = grow(1);
    let (b_lo, b_hi) = grow(11);
    (
        Region::new(&a_lo, &a_hi).unwrap(),
        Region::new(&b_lo, &b_hi).unwrap(),
        Region::new(&p_lo, &p_hi).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The blocked copy kernel is byte-identical to the per-element
    /// reference for every element size 1..=16 (odd sizes take the
    /// generic run loop, powers of two the constant-size dispatch) and
    /// leaves bytes outside the portion untouched.
    #[test]
    fn blocked_copy_matches_per_element_reference(
        dims in prop::collection::vec(1usize..=7, 1..=4),
        elem in 1usize..=16,
        seed in 0u64..10_000,
    ) {
        let (a, b, portion) = enclosing_pair(&dims, seed);
        let src: Vec<u8> = (0..a.num_bytes(elem)).map(|i| (i % 251) as u8 + 1).collect();

        let mut fast = vec![0xCCu8; b.num_bytes(elem)];
        let moved = copy::copy_region(&src, &a, &mut fast, &b, &portion, elem).unwrap();
        prop_assert_eq!(moved, portion.num_bytes(elem));

        let mut slow = vec![0xCCu8; b.num_bytes(elem)];
        naive_copy(&src, &a, &mut slow, &b, &portion, elem);
        prop_assert_eq!(&fast, &slow);
    }

    /// pack and unpack ride the same kernel: packing must equal a
    /// per-element gather and unpacking a per-element scatter, for every
    /// element size 1..=16.
    #[test]
    fn blocked_pack_unpack_match_per_element_reference(
        dims in prop::collection::vec(1usize..=7, 1..=4),
        elem in 1usize..=16,
        seed in 0u64..10_000,
    ) {
        let (a, b, portion) = enclosing_pair(&dims, seed);
        let src: Vec<u8> = (0..a.num_bytes(elem)).map(|i| (i % 247) as u8 + 1).collect();

        let packed = pack_region(&src, &a, &portion, elem).unwrap();
        let mut ref_packed = vec![0u8; portion.num_bytes(elem)];
        naive_copy(&src, &a, &mut ref_packed, &portion, &portion, elem);
        prop_assert_eq!(&packed, &ref_packed);

        let mut fast = vec![0xEEu8; b.num_bytes(elem)];
        unpack_region(&mut fast, &b, &portion, &packed, elem).unwrap();
        let mut slow = vec![0xEEu8; b.num_bytes(elem)];
        naive_copy(&packed, &portion, &mut slow, &b, &portion, elem);
        prop_assert_eq!(&fast, &slow);
    }

    /// Chunk grids tile the array: total elements match and every index
    /// is owned by exactly the chunk `chunk_of_index` reports.
    #[test]
    fn chunk_grid_tiles_array(schema in schema_strategy()) {
        let grid = schema.chunk_grid();
        let total: usize = grid.iter_chunks().map(|(_, r)| r.num_elements()).sum();
        prop_assert_eq!(total, schema.shape().num_elements());
        for idx in schema.shape().iter_indices() {
            let owner = grid.chunk_of_index(&idx);
            prop_assert!(grid.chunk_region(owner).contains_index(&idx));
        }
    }

    /// `chunks_intersecting` agrees with a brute-force scan.
    #[test]
    fn chunks_intersecting_matches_oracle(schema in schema_strategy(), seed in 0usize..1000) {
        let grid = schema.chunk_grid();
        // Derive a probe region deterministically from the seed.
        let dims = schema.shape().dims().to_vec();
        let lo: Vec<usize> = dims.iter().enumerate()
            .map(|(d, &n)| (seed + d * 7) % n)
            .collect();
        let hi: Vec<usize> = dims.iter().zip(&lo)
            .map(|(&n, &l)| (l + 1 + seed % n.max(1)).min(n))
            .collect();
        let probe = Region::new(&lo, &hi).unwrap();
        let fast = grid.chunks_intersecting(&probe);
        let slow: Vec<usize> = grid
            .iter_chunks()
            .filter(|(_, r)| r.overlaps(&probe))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fast, slow);
    }

    /// Region intersection is sound (subset of both) and complete (every
    /// shared index is inside it) against per-index brute force.
    #[test]
    fn intersection_oracle(dims in small_shape(), seed in 0u64..10_000) {
        // Two regions derived from the seed.
        let mk = |salt: u64| -> Region {
            let lo: Vec<usize> = dims.iter().enumerate()
                .map(|(d, &n)| ((seed.wrapping_mul(salt + 1) as usize) + d * 3) % n)
                .collect();
            let hi: Vec<usize> = dims.iter().zip(&lo)
                .map(|(&n, &l)| (l + 1 + (seed as usize + salt as usize) % n).min(n))
                .collect();
            Region::new(&lo, &hi).unwrap()
        };
        let a = mk(1);
        let b = mk(5);
        let isect = a.intersect(&b);
        let shape = Shape::new(&dims).unwrap();
        for idx in shape.iter_indices() {
            let inside = a.contains_index(&idx) && b.contains_index(&idx);
            match &isect {
                Some(r) => prop_assert_eq!(inside, r.contains_index(&idx)),
                None => prop_assert!(!inside),
            }
        }
    }

    /// Subchunk splitting tiles the chunk, respects the cap, keeps file
    /// contiguity, and produces adjacent offsets.
    #[test]
    fn subchunks_tile_chunk(
        dims in small_shape(),
        elem in prop_oneof![Just(1usize), Just(4), Just(8)],
        cap in 1usize..=256,
    ) {
        let shape = Shape::new(&dims).unwrap();
        let chunk = Region::of_shape(&shape);
        let pieces = split_into_subchunks(&chunk, elem, cap).unwrap();
        let mut offset = 0usize;
        let mut elems = 0usize;
        for p in &pieces {
            prop_assert_eq!(p.offset_in_chunk, offset);
            prop_assert!(chunk.contains_region(&p.region));
            prop_assert!(copy::is_contiguous_in(&chunk, &p.region));
            prop_assert!(p.bytes <= cap || p.region.num_elements() == 1);
            offset += p.bytes;
            elems += p.region.num_elements();
        }
        prop_assert_eq!(elems, chunk.num_elements());
        prop_assert_eq!(offset, chunk.num_bytes(elem));
    }

    /// pack → unpack is the identity on the packed region and leaves the
    /// rest of the destination untouched.
    #[test]
    fn pack_unpack_roundtrip(dims in small_shape(), seed in 0u64..10_000) {
        let shape = Shape::new(&dims).unwrap();
        let chunk = Region::of_shape(&shape);
        // Sub-region derived from seed.
        let lo: Vec<usize> = dims.iter().enumerate()
            .map(|(d, &n)| ((seed as usize) + d) % n)
            .collect();
        let hi: Vec<usize> = dims.iter().zip(&lo)
            .map(|(&n, &l)| (l + 1 + (seed as usize / 7) % n).min(n))
            .collect();
        let sub = Region::new(&lo, &hi).unwrap();

        let src: Vec<u8> = (0..chunk.num_elements())
            .map(|i| (i % 251) as u8 + 1)
            .collect();
        let packed = pack_region(&src, &chunk, &sub, 1).unwrap();
        prop_assert_eq!(packed.len(), sub.num_elements());

        let mut dst = vec![0u8; chunk.num_elements()];
        unpack_region(&mut dst, &chunk, &sub, &packed, 1).unwrap();
        for idx in shape.iter_indices() {
            let off = copy::offset_in_region(&chunk, &idx, 1);
            if sub.contains_index(&idx) {
                prop_assert_eq!(dst[off], src[off]);
            } else {
                prop_assert_eq!(dst[off], 0);
            }
        }
    }

    /// `pack_region_into` → `unpack_region` is the identity for every
    /// element size, and the reused output buffer carries no residue
    /// from its previous (larger, differently-sized) contents.
    #[test]
    fn pack_into_unpack_roundtrip_any_elem(
        dims in small_shape(),
        elem in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        seed in 0u64..10_000,
    ) {
        let shape = Shape::new(&dims).unwrap();
        let chunk = Region::of_shape(&shape);
        // Sub-region derived from seed.
        let lo: Vec<usize> = dims.iter().enumerate()
            .map(|(d, &n)| ((seed as usize) + d * 5) % n)
            .collect();
        let hi: Vec<usize> = dims.iter().zip(&lo)
            .map(|(&n, &l)| (l + 1 + (seed as usize / 3) % n).min(n))
            .collect();
        let sub = Region::new(&lo, &hi).unwrap();

        let src: Vec<u8> = (0..chunk.num_bytes(elem))
            .map(|i| (i % 249) as u8 + 1)
            .collect();
        // A dirty, oversized scratch buffer: the into-variant must
        // clear and exactly size it.
        let mut packed = vec![0xAA; chunk.num_bytes(elem) + 7];
        copy::pack_region_into(&mut packed, &src, &chunk, &sub, elem).unwrap();
        prop_assert_eq!(packed.len(), sub.num_bytes(elem));
        prop_assert_eq!(&packed, &pack_region(&src, &chunk, &sub, elem).unwrap());

        let mut dst = vec![0u8; chunk.num_bytes(elem)];
        unpack_region(&mut dst, &chunk, &sub, &packed, elem).unwrap();
        for idx in shape.iter_indices() {
            let off = copy::offset_in_region(&chunk, &idx, elem);
            for b in 0..elem {
                if sub.contains_index(&idx) {
                    prop_assert_eq!(dst[off + b], src[off + b]);
                } else {
                    prop_assert_eq!(dst[off + b], 0);
                }
            }
        }
    }

    /// Copying a portion between two differently-shaped enclosing regions
    /// preserves values at every global index of the portion.
    #[test]
    fn copy_region_between_different_layouts(seed in 0u64..10_000) {
        // Two overlapping 3-D chunk regions in a 12^3 array.
        let s = seed as usize;
        let a = Region::new(
            &[s % 4, (s / 3) % 4, (s / 5) % 4],
            &[s % 4 + 4 + s % 3, (s / 3) % 4 + 5, (s / 5) % 4 + 4],
        ).unwrap();
        let b = Region::new(
            &[(s / 7) % 4, (s / 11) % 4, (s / 13) % 4],
            &[(s / 7) % 4 + 5, (s / 11) % 4 + 4 + s % 2, (s / 13) % 4 + 6],
        ).unwrap();
        if let Some(isect) = a.intersect(&b) {
            let src: Vec<u8> = (0..a.num_elements()).map(|i| (i % 250) as u8 + 1).collect();
            let mut dst = vec![0u8; b.num_elements()];
            copy::copy_region(&src, &a, &mut dst, &b, &isect, 1).unwrap();
            // Check each global index of the intersection.
            let ishape = isect.shape().unwrap();
            for local in ishape.iter_indices() {
                let global: Vec<usize> = local.iter().zip(isect.lo()).map(|(&l, &o)| l + o).collect();
                let so = copy::offset_in_region(&a, &global, 1);
                let doff = copy::offset_in_region(&b, &global, 1);
                prop_assert_eq!(src[so], dst[doff]);
            }
        }
    }
}
