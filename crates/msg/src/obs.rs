//! Internal bridge from transports to the unified [`panda_obs`]
//! recorder API.
//!
//! Each endpoint owns one [`MsgObs`]. Every send/receive event goes to
//! the fabric's shared [`CountingRecorder`] (which backs the
//! [`crate::FabricStats`] accessors) and, when one is attached via
//! [`crate::Transport::set_recorder`], to the external recorder with
//! per-message latency.

use std::sync::Arc;

use panda_obs::{CountingRecorder, Event, Recorder};

/// Observability state of one endpoint.
#[derive(Debug)]
pub(crate) struct MsgObs {
    /// This endpoint's fabric rank.
    node: u32,
    /// Shared per-fabric counters backing [`crate::FabricStats`].
    counting: Arc<CountingRecorder>,
    /// Externally attached recorder (null unless installed).
    external: Arc<dyn Recorder>,
}

impl MsgObs {
    /// State for rank `node` counting into `counting`.
    pub(crate) fn new(node: u32, counting: Arc<CountingRecorder>) -> Self {
        MsgObs {
            node,
            counting,
            external: panda_obs::null_recorder(),
        }
    }

    /// Attach an external recorder.
    pub(crate) fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.external = recorder;
    }

    /// Whether call sites should measure receive-wait durations.
    pub(crate) fn timed(&self) -> bool {
        self.external.enabled()
    }

    /// Fan one event out to counters and the external recorder.
    pub(crate) fn emit(&self, event: &Event<'_>) {
        self.counting.record(self.node, event);
        if self.external.enabled() {
            self.external.record(self.node, event);
        }
    }
}
