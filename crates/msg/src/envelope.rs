//! Node identifiers, payload buffers, and message envelopes.

use std::borrow::Cow;
use std::fmt;
use std::ops::{Deref, Index};
use std::sync::Arc;

/// A global node rank. Panda numbers compute nodes (clients) first and
/// I/O nodes (servers) after them, but this layer is agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The rank as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A payload buffer: either uniquely owned or shared.
///
/// The shared form lets one disk buffer back several in-flight messages
/// (a server pushing the same prefetched subchunk to its owner client)
/// without copying; the in-process fabric hands the `Arc` across the
/// channel as-is.
#[derive(Debug, Clone)]
pub enum Bytes {
    /// A uniquely-owned buffer, movable into an envelope.
    Owned(Vec<u8>),
    /// A shared, immutable buffer.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// The bytes, copying only if the buffer is shared.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Bytes::Owned(v) => v,
            Bytes::Shared(a) => a.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            Bytes::Owned(v) => v,
            Bytes::Shared(a) => a,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Owned(v)
    }
}

impl From<Arc<[u8]>> for Bytes {
    fn from(a: Arc<[u8]>) -> Self {
        Bytes::Shared(a)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A message body as it travels through a fabric.
///
/// `Inline` is the classic single-buffer form. `Framed` is the vectored
/// form produced by [`crate::Transport::send_vectored`]: a small
/// protocol head plus a large data body that was never copied into a
/// contiguous envelope buffer. Logically a framed payload *is* the
/// concatenation `head ++ body`; all comparisons and length queries act
/// on that byte string.
#[derive(Debug, Clone)]
pub enum Payload {
    /// One contiguous buffer.
    Inline(Vec<u8>),
    /// Vectored form: protocol head + data body, uncopied.
    Framed {
        /// The (small) protocol head.
        head: Vec<u8>,
        /// The (large) data body.
        body: Bytes,
    },
}

impl Payload {
    /// Total logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline(v) => v.len(),
            Payload::Framed { head, body } => head.len() + body.len(),
        }
    }

    /// True iff there are no payload bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The two parts as slices (`Inline` is all head, empty body).
    #[inline]
    pub fn as_parts(&self) -> (&[u8], &[u8]) {
        match self {
            Payload::Inline(v) => (v, &[]),
            Payload::Framed { head, body } => (head, body),
        }
    }

    /// The logical bytes, borrowing when already contiguous.
    pub fn contiguous(&self) -> Cow<'_, [u8]> {
        match self {
            Payload::Inline(v) => Cow::Borrowed(v),
            Payload::Framed { head, body } => {
                let mut buf = Vec::with_capacity(head.len() + body.len());
                buf.extend_from_slice(head);
                buf.extend_from_slice(body);
                Cow::Owned(buf)
            }
        }
    }

    /// The logical bytes as an owned buffer, copying only when framed.
    pub fn into_contiguous(self) -> Vec<u8> {
        match self {
            Payload::Inline(v) => v,
            Payload::Framed { head, body } => {
                let mut buf = head;
                buf.extend_from_slice(&body);
                buf
            }
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Inline(v)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && {
            let (h1, b1) = self.as_parts();
            let (h2, b2) = other.as_parts();
            // Compare the logical concatenations without materializing
            // them; the split points may differ.
            let mut it1 = h1.iter().chain(b1.iter());
            let mut it2 = h2.iter().chain(b2.iter());
            it1.by_ref().eq(it2.by_ref())
        }
    }
}

impl Eq for Payload {}

impl Index<usize> for Payload {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        let (head, body) = self.as_parts();
        if i < head.len() {
            &head[i]
        } else {
            &body[i - head.len()]
        }
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        let (head, body) = self.as_parts();
        self.len() == other.len() && head == &other[..head.len()] && body == &other[head.len()..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self == &other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        *self == &other[..]
    }
}

/// A delivered message: source rank, user tag, and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Rank of the sender.
    pub src: NodeId,
    /// Application-chosen tag (the Panda protocol uses one tag per
    /// message kind).
    pub tag: u32,
    /// Message body.
    pub payload: Payload,
}

impl Envelope {
    /// Payload size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True iff the payload is empty (pure-control message).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn envelope_len() {
        let e = Envelope {
            src: NodeId(0),
            tag: 3,
            payload: vec![1, 2, 3].into(),
        };
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        let c = Envelope {
            src: NodeId(1),
            tag: 0,
            payload: vec![].into(),
        };
        assert!(c.is_empty());
    }

    #[test]
    fn framed_equals_inline_with_same_bytes() {
        let framed = Payload::Framed {
            head: vec![1, 2],
            body: Bytes::Owned(vec![3, 4, 5]),
        };
        assert_eq!(framed, Payload::Inline(vec![1, 2, 3, 4, 5]));
        assert_eq!(framed, vec![1, 2, 3, 4, 5]);
        assert_eq!(framed, [1, 2, 3, 4, 5]);
        assert_eq!(framed.len(), 5);
        assert_eq!(framed[0], 1);
        assert_eq!(framed[4], 5);
        assert_eq!(framed.contiguous().as_ref(), &[1, 2, 3, 4, 5]);
        assert_eq!(framed.into_contiguous(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn shared_bytes_compare_and_deref() {
        let shared: Bytes = Arc::<[u8]>::from(vec![7u8, 8, 9]).into();
        let owned: Bytes = vec![7u8, 8, 9].into();
        assert_eq!(shared, owned);
        assert_eq!(&shared[..], &[7, 8, 9]);
        assert_eq!(shared.clone().into_vec(), vec![7, 8, 9]);
        let p = Payload::Framed {
            head: Vec::new(),
            body: shared,
        };
        assert_eq!(p, [7, 8, 9]);
    }
}
