//! Node identifiers and message envelopes.

use std::fmt;

/// A global node rank. Panda numbers compute nodes (clients) first and
/// I/O nodes (servers) after them, but this layer is agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The rank as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A delivered message: source rank, user tag, and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Rank of the sender.
    pub src: NodeId,
    /// Application-chosen tag (the Panda protocol uses one tag per
    /// message kind).
    pub tag: u32,
    /// Message body.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Payload size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True iff the payload is empty (pure-control message).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn envelope_len() {
        let e = Envelope {
            src: NodeId(0),
            tag: 3,
            payload: vec![1, 2, 3],
        };
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        let c = Envelope {
            src: NodeId(1),
            tag: 0,
            payload: vec![],
        };
        assert!(c.is_empty());
    }
}
