//! # panda-msg — message-passing substrate for Panda
//!
//! Panda 2.0 "uses MPI for all communication" (paper §1). Rust MPI
//! bindings are immature, and the reproduction targets a single machine,
//! so this crate provides an MPI-shaped message-passing layer:
//!
//! * [`NodeId`] — a global rank, 0-based, spanning compute *and* I/O
//!   nodes (Panda assigns clients ranks `0..C` and servers `C..C+S`);
//! * [`Transport`] — tagged point-to-point byte messages with MPI-style
//!   selective receive (`recv_matching` by source and/or tag, buffering
//!   non-matching arrivals exactly like an MPI unexpected-message queue);
//! * [`InProcFabric`] — the production implementation: one endpoint per
//!   node, connected by unbounded crossbeam channels, suitable for
//!   one-OS-thread-per-node execution;
//! * [`FabricStats`] — message/byte counters used by tests and by the
//!   performance model's validation suite; since the unified
//!   observability layer it is a read adapter over the same
//!   [`panda_obs`] event stream the transports report into.
//!
//! Attach a [`panda_obs::Recorder`] with [`Transport::set_recorder`] to
//! get per-message `MsgSent` / `MsgReceived` events with payload sizes
//! and receive-wait latencies; with no recorder attached the transports
//! never read the clock.
//!
//! The layer is deliberately low-level (bytes, tags); the typed Panda
//! protocol lives in `panda-core`.

#![warn(missing_docs)]

pub mod envelope;
pub mod error;
pub mod group;
pub mod inproc;
mod obs;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use envelope::{Bytes, Envelope, NodeId, Payload};
pub use error::MsgError;
pub use group::Group;
pub use inproc::{InProcEndpoint, InProcFabric};
pub use stats::{FabricStats, TagCounts};
pub use tcp::{TcpEndpoint, TcpFabric};
pub use transport::{MatchSpec, Transport};
