//! The transport trait: MPI-shaped tagged point-to-point messaging.

use std::sync::Arc;

use panda_obs::Recorder;

use crate::envelope::{Bytes, Envelope, NodeId};
use crate::error::MsgError;

/// A receive-side match specification, mirroring MPI's
/// `(source, tag)` pair with `MPI_ANY_SOURCE` / `MPI_ANY_TAG` wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchSpec {
    /// Required source rank, or `None` for any source.
    pub src: Option<NodeId>,
    /// Required tag, or `None` for any tag.
    pub tag: Option<u32>,
}

impl MatchSpec {
    /// Match anything.
    pub fn any() -> Self {
        MatchSpec::default()
    }

    /// Match a specific tag from any source.
    pub fn tag(tag: u32) -> Self {
        MatchSpec {
            src: None,
            tag: Some(tag),
        }
    }

    /// Match a specific source and tag.
    pub fn from(src: NodeId, tag: u32) -> Self {
        MatchSpec {
            src: Some(src),
            tag: Some(tag),
        }
    }

    /// True iff the envelope satisfies this spec.
    pub fn matches(&self, env: &Envelope) -> bool {
        self.src.is_none_or(|s| s == env.src) && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// One node's view of the message fabric.
///
/// Semantics (matching MPI's two-sided model):
/// * `send` is asynchronous and never blocks (buffered, unbounded);
/// * `recv_matching` blocks until a message satisfying the spec arrives;
///   non-matching messages that arrive in the meantime are buffered and
///   delivered to later receives in arrival order (the MPI "unexpected
///   message queue");
/// * message order between a fixed (sender, receiver) pair is preserved.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn node(&self) -> NodeId;

    /// Number of nodes in the fabric.
    fn num_nodes(&self) -> usize;

    /// Send `payload` to `dst` with the given tag.
    fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) -> Result<(), MsgError>;

    /// Send the logical message `head ++ body` without requiring the
    /// caller to concatenate the two buffers first.
    ///
    /// This is the zero-copy path for bulk data: the (small) protocol
    /// head and the (large) data body travel as one message, but a
    /// transport may move them separately — the in-process fabric hands
    /// both buffers across its channel untouched, and the TCP fabric
    /// writes them to the socket back-to-back writev-style. The wire
    /// format and receive side are unchanged: a receiver sees one
    /// envelope whose payload equals the concatenation.
    ///
    /// The default implementation concatenates and falls back to
    /// [`Transport::send`], so transports without a vectored path remain
    /// valid.
    fn send_vectored(
        &mut self,
        dst: NodeId,
        tag: u32,
        head: Vec<u8>,
        body: Bytes,
    ) -> Result<(), MsgError> {
        let mut buf = head;
        buf.extend_from_slice(&body);
        self.send(dst, tag, buf)
    }

    /// Block until a message matching `spec` arrives and return it.
    fn recv_matching(&mut self, spec: MatchSpec) -> Result<Envelope, MsgError>;

    /// Receive the next message of any source/tag.
    fn recv(&mut self) -> Result<Envelope, MsgError> {
        self.recv_matching(MatchSpec::any())
    }

    /// Non-blocking probe: return a matching message if one is already
    /// available (delivered or buffered), else `None`.
    fn try_recv_matching(&mut self, spec: MatchSpec) -> Result<Option<Envelope>, MsgError>;

    /// Attach an observability recorder to this endpoint.
    ///
    /// After this call the endpoint reports
    /// [`panda_obs::Event::MsgSent`] / [`panda_obs::Event::MsgReceived`]
    /// events (tagged with this endpoint's rank) to `recorder`, with
    /// receive-wait durations measured only while the recorder is
    /// enabled. The default implementation ignores the recorder, so
    /// transports without instrumentation remain valid.
    fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        let _ = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_spec_wildcards() {
        let env = Envelope {
            src: NodeId(3),
            tag: 7,
            payload: vec![].into(),
        };
        assert!(MatchSpec::any().matches(&env));
        assert!(MatchSpec::tag(7).matches(&env));
        assert!(!MatchSpec::tag(8).matches(&env));
        assert!(MatchSpec::from(NodeId(3), 7).matches(&env));
        assert!(!MatchSpec::from(NodeId(2), 7).matches(&env));
        let src_only = MatchSpec {
            src: Some(NodeId(3)),
            tag: None,
        };
        assert!(src_only.matches(&env));
    }
}
