//! Collective helpers over point-to-point messaging.
//!
//! MPI applications lean on a handful of collectives; Panda itself only
//! needs broadcast-like control flows (the master server relaying a
//! request, the master client releasing its peers), but applications
//! built on the same fabric — like the Jacobi example — want barriers
//! and broadcasts too. These helpers implement them with a centralized
//! root, which is exactly how Panda's own completion protocol works
//! (workers → master → everyone).

use crate::envelope::NodeId;
use crate::error::MsgError;
use crate::transport::{MatchSpec, Transport};

/// A fixed set of nodes participating in collectives together. The
/// first member acts as the root.
///
/// ```
/// use panda_msg::{Group, InProcFabric};
/// let (eps, _) = InProcFabric::new(3);
/// let group = Group::range(0, 3);
/// std::thread::scope(|s| {
///     for (i, mut ep) in eps.into_iter().enumerate() {
///         let group = &group;
///         s.spawn(move || {
///             let v = if i == 0 {
///                 group.broadcast(&mut ep, 9, Some(vec![7])).unwrap()
///             } else {
///                 group.broadcast(&mut ep, 9, None).unwrap()
///             };
///             assert_eq!(v, vec![7]);
///         });
///     }
/// });
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<NodeId>,
}

impl Group {
    /// A group over the given members (at least one; the first is the
    /// root). Members must be distinct.
    pub fn new(members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "a group needs at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "duplicate group members");
        Group { members }
    }

    /// The contiguous group `lo..hi` (convenience for "all clients" /
    /// "all servers" rank ranges).
    pub fn range(lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "empty range");
        Group::new((lo..hi).map(NodeId).collect())
    }

    /// The root (first member).
    pub fn root(&self) -> NodeId {
        self.members[0]
    }

    /// All members, root first.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Groups are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True iff `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Synchronize all members: everyone sends to the root, the root
    /// replies to everyone. Each member calls this exactly once per
    /// barrier with its own transport; `tag` must be unused by other
    /// concurrent traffic.
    pub fn barrier<T: Transport + ?Sized>(&self, t: &mut T, tag: u32) -> Result<(), MsgError> {
        let me = t.node();
        debug_assert!(self.contains(me), "barrier caller must be a member");
        if me == self.root() {
            for _ in 1..self.members.len() {
                t.recv_matching(MatchSpec::tag(tag))?;
            }
            for &m in &self.members[1..] {
                t.send(m, tag, Vec::new())?;
            }
        } else {
            t.send(self.root(), tag, Vec::new())?;
            t.recv_matching(MatchSpec::from(self.root(), tag))?;
        }
        Ok(())
    }

    /// Broadcast `payload` from the root to every member. The root
    /// passes `Some(payload)`; the others pass `None` and receive the
    /// root's bytes as the return value (the root gets its own copy
    /// back).
    pub fn broadcast<T: Transport + ?Sized>(
        &self,
        t: &mut T,
        tag: u32,
        payload: Option<Vec<u8>>,
    ) -> Result<Vec<u8>, MsgError> {
        let root = self.root();
        self.broadcast_from(t, root, tag, payload)
    }

    /// Broadcast from an arbitrary member (rotating-root algorithms
    /// like blocked LU broadcast from a different node each step). The
    /// sender passes `Some(payload)`; everyone else passes `None`.
    pub fn broadcast_from<T: Transport + ?Sized>(
        &self,
        t: &mut T,
        root: NodeId,
        tag: u32,
        payload: Option<Vec<u8>>,
    ) -> Result<Vec<u8>, MsgError> {
        let me = t.node();
        debug_assert!(self.contains(me), "broadcast caller must be a member");
        debug_assert!(self.contains(root), "broadcast root must be a member");
        if me == root {
            let payload = payload.expect("root must supply the broadcast payload");
            for &m in &self.members {
                if m != root {
                    t.send(m, tag, payload.clone())?;
                }
            }
            Ok(payload)
        } else {
            debug_assert!(payload.is_none(), "non-root must not supply a payload");
            let env = t.recv_matching(MatchSpec::from(root, tag))?;
            Ok(env.payload.into_contiguous())
        }
    }

    /// Gather one message from every member at the root. Members pass
    /// their payload; the root receives all payloads ordered by member
    /// rank (including its own) and non-roots get an empty vec.
    pub fn gather<T: Transport + ?Sized>(
        &self,
        t: &mut T,
        tag: u32,
        payload: Vec<u8>,
    ) -> Result<Vec<Vec<u8>>, MsgError> {
        let me = t.node();
        debug_assert!(self.contains(me), "gather caller must be a member");
        if me == self.root() {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.members.len()];
            out[0] = Some(payload);
            for _ in 1..self.members.len() {
                let env = t.recv_matching(MatchSpec::tag(tag))?;
                let idx = self
                    .members
                    .iter()
                    .position(|&m| m == env.src)
                    .expect("gather from non-member");
                out[idx] = Some(env.payload.into_contiguous());
            }
            Ok(out.into_iter().map(|p| p.expect("all gathered")).collect())
        } else {
            t.send(self.root(), tag, payload)?;
            Ok(Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inproc::InProcFabric;
    use std::thread;

    const TAG: u32 = 77;

    fn with_group(n: usize, f: impl Fn(usize, &mut dyn Transport, &Group) + Sync) {
        let (eps, _) = InProcFabric::new(n);
        let group = Group::range(0, n);
        thread::scope(|s| {
            for (i, mut ep) in eps.into_iter().enumerate() {
                let group = &group;
                let f = &f;
                s.spawn(move || f(i, &mut ep, group));
            }
        });
    }

    #[test]
    fn barrier_releases_everyone() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        with_group(5, |_, t, g| {
            arrived.fetch_add(1, Ordering::SeqCst);
            g.barrier(t, TAG).unwrap();
            // After the barrier, everyone must have arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 5);
        });
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        with_group(4, |i, t, g| {
            let got = if i == 0 {
                g.broadcast(t, TAG, Some(b"hello".to_vec())).unwrap()
            } else {
                g.broadcast(t, TAG, None).unwrap()
            };
            assert_eq!(got, b"hello");
        });
    }

    #[test]
    fn broadcast_from_rotating_roots() {
        with_group(3, |i, t, g| {
            for root in 0..3usize {
                let got = if i == root {
                    g.broadcast_from(t, NodeId(root), TAG + root as u32, Some(vec![root as u8]))
                        .unwrap()
                } else {
                    g.broadcast_from(t, NodeId(root), TAG + root as u32, None)
                        .unwrap()
                };
                assert_eq!(got, vec![root as u8]);
            }
        });
    }

    #[test]
    fn gather_orders_by_rank() {
        with_group(4, |i, t, g| {
            let got = g.gather(t, TAG, vec![i as u8]).unwrap();
            if i == 0 {
                assert_eq!(got, vec![vec![0], vec![1], vec![2], vec![3]]);
            } else {
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn range_and_membership() {
        let g = Group::range(4, 7);
        assert_eq!(g.len(), 3);
        assert_eq!(g.root(), NodeId(4));
        assert!(g.contains(NodeId(6)));
        assert!(!g.contains(NodeId(7)));
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_members_rejected() {
        let _ = Group::new(vec![NodeId(1), NodeId(1)]);
    }
}
