//! In-process fabric: one endpoint per node over crossbeam channels.
//!
//! This is the production transport of the reproduction: the Panda
//! runtime runs every compute node and every I/O node as one OS thread
//! in a single process, so "MPI" becomes unbounded channels. Message
//! latency is effectively zero here — wall-clock performance figures
//! come from the calibrated model in `panda-model`, not from this
//! fabric; this fabric exists to move real bytes and prove the protocol.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use panda_obs::{Event, Recorder};

use crate::envelope::{Bytes, Envelope, NodeId, Payload};
use crate::error::MsgError;
use crate::obs::MsgObs;
use crate::stats::FabricStats;
use crate::transport::{MatchSpec, Transport};

/// Default blocking-receive timeout. Panda's protocol is deadlock-free;
/// a receive that waits this long indicates a bug, so we fail loudly.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Factory for a fully-connected set of [`InProcEndpoint`]s.
#[derive(Debug)]
pub struct InProcFabric;

impl InProcFabric {
    /// Create a fabric of `n` nodes and return its endpoints, index ==
    /// rank. Endpoints are meant to be moved into per-node threads.
    #[allow(clippy::new_ret_no_self)] // factory: the product is the endpoints
    pub fn new(n: usize) -> (Vec<InProcEndpoint>, Arc<FabricStats>) {
        Self::with_timeout(n, DEFAULT_RECV_TIMEOUT)
    }

    /// As [`InProcFabric::new`] with a custom receive timeout (tests use
    /// short timeouts to exercise the error path).
    pub fn with_timeout(
        n: usize,
        recv_timeout: Duration,
    ) -> (Vec<InProcEndpoint>, Arc<FabricStats>) {
        let stats = Arc::new(FabricStats::new());
        let mut txs: Vec<Sender<Envelope>> = Vec::with_capacity(n);
        let mut rxs: Vec<Receiver<Envelope>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| InProcEndpoint {
                node: NodeId(rank),
                peers: txs.clone(),
                rx,
                pending: VecDeque::new(),
                obs: MsgObs::new(rank as u32, Arc::clone(stats.recorder())),
                stats: Arc::clone(&stats),
                recv_timeout,
            })
            .collect();
        (endpoints, stats)
    }
}

/// One node's endpoint in an [`InProcFabric`].
#[derive(Debug)]
pub struct InProcEndpoint {
    node: NodeId,
    peers: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    /// MPI-style unexpected-message queue: arrivals that did not match
    /// the spec of the receive in progress, kept in arrival order.
    pending: VecDeque<Envelope>,
    obs: MsgObs,
    stats: Arc<FabricStats>,
    recv_timeout: Duration,
}

impl InProcEndpoint {
    /// Shared statistics handle.
    pub fn stats(&self) -> &Arc<FabricStats> {
        &self.stats
    }

    fn take_pending(&mut self, spec: MatchSpec) -> Option<Envelope> {
        let pos = self.pending.iter().position(|e| spec.matches(e))?;
        self.pending.remove(pos)
    }

    /// Report a delivered message. `wait` is the time this endpoint
    /// spent blocked for it (zero when it was already buffered or when
    /// no enabled recorder asked for timing).
    fn note_recv(&self, env: &Envelope, wait: Duration) {
        self.obs.emit(&Event::MsgReceived {
            from: env.src.index() as u32,
            tag: env.tag,
            bytes: env.len() as u64,
            wait,
        });
    }

    fn send_payload(&mut self, dst: NodeId, tag: u32, payload: Payload) -> Result<(), MsgError> {
        let tx = self.peers.get(dst.index()).ok_or(MsgError::InvalidNode {
            node: dst,
            num_nodes: self.peers.len(),
        })?;
        let bytes = payload.len();
        tx.send(Envelope {
            src: self.node,
            tag,
            payload,
        })
        .map_err(|_| MsgError::Disconnected)?;
        self.obs.emit(&Event::MsgSent {
            to: dst.index() as u32,
            tag,
            bytes: bytes as u64,
            dur: Duration::ZERO,
        });
        Ok(())
    }
}

impl Transport for InProcEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn num_nodes(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) -> Result<(), MsgError> {
        self.send_payload(dst, tag, Payload::Inline(payload))
    }

    /// Zero-copy handoff: head and body cross the channel as the two
    /// buffers they already are — in particular an `Arc<[u8]>` body is
    /// shared with the receiver, never duplicated.
    fn send_vectored(
        &mut self,
        dst: NodeId,
        tag: u32,
        head: Vec<u8>,
        body: Bytes,
    ) -> Result<(), MsgError> {
        self.send_payload(dst, tag, Payload::Framed { head, body })
    }

    fn recv_matching(&mut self, spec: MatchSpec) -> Result<Envelope, MsgError> {
        if let Some(env) = self.take_pending(spec) {
            self.note_recv(&env, Duration::ZERO);
            return Ok(env);
        }
        let start = self.obs.timed().then(Instant::now);
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if spec.matches(&env) {
                        let wait = start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
                        self.note_recv(&env, wait);
                        return Ok(env);
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MsgError::Timeout {
                        after_ms: self.recv_timeout.as_millis() as u64,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(MsgError::Disconnected),
            }
        }
    }

    fn try_recv_matching(&mut self, spec: MatchSpec) -> Result<Option<Envelope>, MsgError> {
        if let Some(env) = self.take_pending(spec) {
            self.note_recv(&env, Duration::ZERO);
            return Ok(Some(env));
        }
        loop {
            match self.rx.try_recv() {
                Ok(env) => {
                    if spec.matches(&env) {
                        self.note_recv(&env, Duration::ZERO);
                        return Ok(Some(env));
                    }
                    self.pending.push_back(env);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return Ok(None),
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    return Err(MsgError::Disconnected)
                }
            }
        }
    }

    fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.obs.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong_across_threads() {
        let (mut eps, _stats) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            let env = b.recv().unwrap();
            assert_eq!(env.src, NodeId(0));
            assert_eq!(env.payload, b"ping");
            b.send(NodeId(0), 2, b"pong".to_vec()).unwrap();
        });
        a.send(NodeId(1), 1, b"ping".to_vec()).unwrap();
        let env = a.recv_matching(MatchSpec::from(NodeId(1), 2)).unwrap();
        assert_eq!(env.payload, b"pong");
        t.join().unwrap();
    }

    #[test]
    fn self_send_works() {
        let (mut eps, _) = InProcFabric::new(1);
        let ep = &mut eps[0];
        ep.send(NodeId(0), 9, vec![42]).unwrap();
        let env = ep.recv().unwrap();
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.payload, vec![42]);
    }

    #[test]
    fn selective_receive_buffers_unmatched() {
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(NodeId(1), 1, b"first".to_vec()).unwrap();
        a.send(NodeId(1), 2, b"second".to_vec()).unwrap();
        // Receive tag 2 first; tag 1 must be buffered, not lost.
        let env2 = b.recv_matching(MatchSpec::tag(2)).unwrap();
        assert_eq!(env2.payload, b"second");
        let env1 = b.recv_matching(MatchSpec::tag(1)).unwrap();
        assert_eq!(env1.payload, b"first");
    }

    #[test]
    fn pairwise_fifo_order() {
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100u8 {
            a.send(NodeId(1), 5, vec![i]).unwrap();
        }
        for i in 0..100u8 {
            let env = b.recv_matching(MatchSpec::tag(5)).unwrap();
            assert_eq!(env.payload, vec![i]);
        }
    }

    #[test]
    fn invalid_destination_rejected() {
        let (mut eps, _) = InProcFabric::new(2);
        let err = eps[0].send(NodeId(5), 0, vec![]).unwrap_err();
        assert!(matches!(err, MsgError::InvalidNode { .. }));
    }

    #[test]
    fn recv_times_out() {
        let (mut eps, _) = InProcFabric::with_timeout(2, Duration::from_millis(20));
        let err = eps[0].recv().unwrap_err();
        assert!(matches!(err, MsgError::Timeout { .. }));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let (mut eps, _) = InProcFabric::new(2);
        assert_eq!(eps[0].try_recv_matching(MatchSpec::any()).unwrap(), None);
    }

    #[test]
    fn try_recv_finds_buffered_message() {
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(NodeId(1), 1, vec![1]).unwrap();
        a.send(NodeId(1), 2, vec![2]).unwrap();
        // Pull tag 2 into hand; tag 1 lands in the pending queue.
        b.recv_matching(MatchSpec::tag(2)).unwrap();
        let got = b.try_recv_matching(MatchSpec::tag(1)).unwrap().unwrap();
        assert_eq!(got.payload, vec![1]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (mut eps, stats) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(NodeId(1), 0, vec![0; 100]).unwrap();
        a.send(NodeId(1), 0, vec![0; 50]).unwrap();
        b.recv().unwrap();
        assert_eq!(stats.msgs_sent(), 2);
        assert_eq!(stats.bytes_sent(), 150);
        assert_eq!(stats.msgs_received(), 1);
        assert_eq!(stats.bytes_received(), 100);
    }

    #[test]
    fn external_recorder_sees_tagged_events() {
        use panda_obs::{EventKind, TimelineRecorder};
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let rec: Arc<TimelineRecorder> = Arc::new(TimelineRecorder::new());
        a.set_recorder(rec.clone());
        b.set_recorder(rec.clone());
        a.send(NodeId(1), 4, vec![7; 32]).unwrap();
        b.recv().unwrap();
        let events = rec.timeline().unwrap();
        let sent: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MsgSent)
            .collect();
        let recvd: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MsgReceived)
            .collect();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].node, 0);
        assert_eq!(sent[0].peer, Some(1));
        assert_eq!(sent[0].bytes, 32);
        assert_eq!(sent[0].tag, Some(4));
        assert_eq!(recvd.len(), 1);
        assert_eq!(recvd[0].node, 1);
        assert_eq!(recvd[0].peer, Some(0));
        // The fabric's own counters saw the same traffic.
        let (msgs, bytes) = rec.counting().tag_counts(4);
        assert_eq!((msgs, bytes), (1, 32));
    }

    #[test]
    fn vectored_send_is_zero_copy_and_byte_identical() {
        let (mut eps, _) = InProcFabric::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let body: Arc<[u8]> = Arc::from(vec![9u8; 64]);
        a.send_vectored(NodeId(1), 3, vec![1, 2, 3], Bytes::Shared(body.clone()))
            .unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.len(), 3 + 64);
        // The logical bytes are head ++ body ...
        let mut want = vec![1u8, 2, 3];
        want.extend_from_slice(&[9u8; 64]);
        assert_eq!(env.payload, want);
        // ... and the body is the *same allocation* the sender holds.
        match env.payload {
            Payload::Framed {
                body: Bytes::Shared(arc),
                ..
            } => assert!(Arc::ptr_eq(&arc, &body), "body was copied"),
            other => panic!("expected a shared framed payload, got {other:?}"),
        }
    }

    #[test]
    fn many_to_one_delivery_is_complete() {
        let (mut eps, _) = InProcFabric::new(5);
        let mut sink = eps.remove(4);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                thread::spawn(move || {
                    for i in 0..50u8 {
                        ep.send(NodeId(4), ep.node().index() as u32, vec![i])
                            .unwrap();
                    }
                })
            })
            .collect();
        let mut counts = [0usize; 4];
        for _ in 0..200 {
            let env = sink.recv().unwrap();
            counts[env.src.index()] += 1;
        }
        assert_eq!(counts, [50, 50, 50, 50]);
        for h in handles {
            h.join().unwrap();
        }
    }
}
