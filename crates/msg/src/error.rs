//! Transport errors.

use crate::envelope::NodeId;
use std::fmt;

/// Errors raised by a [`crate::Transport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgError {
    /// The destination rank does not exist in the fabric.
    InvalidNode {
        /// The offending rank.
        node: NodeId,
        /// Number of nodes in the fabric.
        num_nodes: usize,
    },
    /// A blocking receive exceeded the endpoint's timeout. Panda's
    /// protocol is deadlock-free by construction; a timeout therefore
    /// indicates a protocol bug and is surfaced loudly instead of
    /// hanging the test suite.
    Timeout {
        /// The timeout that elapsed, in milliseconds.
        after_ms: u64,
    },
    /// All peer endpoints have been dropped.
    Disconnected,
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::InvalidNode { node, num_nodes } => {
                write!(f, "{node} is not a member of this {num_nodes}-node fabric")
            }
            MsgError::Timeout { after_ms } => {
                write!(f, "receive timed out after {after_ms} ms")
            }
            MsgError::Disconnected => write!(f, "all peers disconnected"),
        }
    }
}

impl std::error::Error for MsgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MsgError::InvalidNode {
            node: NodeId(9),
            num_nodes: 4,
        };
        assert!(e.to_string().contains("node9"));
        assert!(MsgError::Timeout { after_ms: 100 }
            .to_string()
            .contains("100"));
    }
}
