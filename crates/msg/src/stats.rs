//! Fabric-wide message statistics.
//!
//! The paper's fast-disk experiments reason about "total number of
//! messages and message sizes" (§3); these counters let the test suite
//! and the model-validation tests check the real runtime against the
//! message counts the performance model assumes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Shared counters for one fabric. All counters are monotone and updated
/// with relaxed ordering — they are diagnostics, not synchronization.
///
/// Per-tag send counts let higher layers cross-validate against the
/// performance model: the model's predicted data/control message counts
/// must equal the real fabric's per-tag counts for the same collective.
#[derive(Debug, Default)]
pub struct FabricStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_received: AtomicU64,
    by_tag: Mutex<HashMap<u32, TagCounts>>,
}

/// Message/byte counts for one tag.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TagCounts {
    /// Messages sent with this tag.
    pub msgs: u64,
    /// Payload bytes sent with this tag.
    pub bytes: u64,
}

impl FabricStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self, tag: u32, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut by_tag = self.by_tag.lock();
        let entry = by_tag.entry(tag).or_default();
        entry.msgs += 1;
        entry.bytes += bytes as u64;
    }

    pub(crate) fn record_recv(&self, bytes: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total messages sent through the fabric.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total messages delivered to receivers.
    pub fn msgs_received(&self) -> u64 {
        self.msgs_received.load(Ordering::Relaxed)
    }

    /// Total payload bytes delivered.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Send counts for one tag (zero if the tag was never used).
    pub fn tag_counts(&self, tag: u32) -> TagCounts {
        self.by_tag.lock().get(&tag).copied().unwrap_or_default()
    }

    /// All tags seen so far, with their counts, sorted by tag.
    pub fn all_tag_counts(&self) -> Vec<(u32, TagCounts)> {
        let mut v: Vec<(u32, TagCounts)> =
            self.by_tag.lock().iter().map(|(&t, &c)| (t, c)).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::new();
        s.record_send(1, 10);
        s.record_send(2, 5);
        s.record_recv(10);
        assert_eq!(s.msgs_sent(), 2);
        assert_eq!(s.bytes_sent(), 15);
        assert_eq!(s.msgs_received(), 1);
        assert_eq!(s.bytes_received(), 10);
    }

    #[test]
    fn per_tag_counts() {
        let s = FabricStats::new();
        s.record_send(3, 100);
        s.record_send(3, 50);
        s.record_send(7, 1);
        assert_eq!(
            s.tag_counts(3),
            TagCounts {
                msgs: 2,
                bytes: 150
            }
        );
        assert_eq!(s.tag_counts(7), TagCounts { msgs: 1, bytes: 1 });
        assert_eq!(s.tag_counts(99), TagCounts::default());
        let all = s.all_tag_counts();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 3);
    }
}
