//! Fabric-wide message statistics.
//!
//! The paper's fast-disk experiments reason about "total number of
//! messages and message sizes" (§3); these counters let the test suite
//! and the model-validation tests check the real runtime against the
//! message counts the performance model assumes.
//!
//! Since the unified observability layer landed, [`FabricStats`] is a
//! thin read adapter over a [`panda_obs::CountingRecorder`]: transports
//! report [`panda_obs::Event::MsgSent`] / [`panda_obs::Event::MsgReceived`]
//! events
//! and this type merely projects the familiar counter names out of
//! them. The accessor API is unchanged.

use std::sync::Arc;

use panda_obs::{CountingRecorder, EventKind};

/// Shared counters for one fabric, projected from the fabric's event
/// stream. All counters are monotone — they are diagnostics, not
/// synchronization.
///
/// Per-tag send counts let higher layers cross-validate against the
/// performance model: the model's predicted data/control message counts
/// must equal the real fabric's per-tag counts for the same collective.
#[derive(Debug)]
pub struct FabricStats {
    counting: Arc<CountingRecorder>,
}

/// Message/byte counts for one tag.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TagCounts {
    /// Messages sent with this tag.
    pub msgs: u64,
    /// Payload bytes sent with this tag.
    pub bytes: u64,
}

impl Default for FabricStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FabricStats {
    /// Fresh zeroed counters over a private recorder.
    pub fn new() -> Self {
        Self::over(Arc::new(CountingRecorder::new()))
    }

    /// An adapter reading from `counting`.
    pub fn over(counting: Arc<CountingRecorder>) -> Self {
        FabricStats { counting }
    }

    /// The event counters this adapter projects from.
    pub fn recorder(&self) -> &Arc<CountingRecorder> {
        &self.counting
    }

    /// Total messages sent through the fabric.
    pub fn msgs_sent(&self) -> u64 {
        self.counting.count(EventKind::MsgSent)
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.counting.bytes(EventKind::MsgSent)
    }

    /// Total messages delivered to receivers.
    pub fn msgs_received(&self) -> u64 {
        self.counting.count(EventKind::MsgReceived)
    }

    /// Total payload bytes delivered.
    pub fn bytes_received(&self) -> u64 {
        self.counting.bytes(EventKind::MsgReceived)
    }

    /// Send counts for one tag (zero if the tag was never used).
    pub fn tag_counts(&self, tag: u32) -> TagCounts {
        let (msgs, bytes) = self.counting.tag_counts(tag);
        TagCounts { msgs, bytes }
    }

    /// All tags seen so far, with their counts, sorted by tag.
    pub fn all_tag_counts(&self) -> Vec<(u32, TagCounts)> {
        self.counting
            .all_tag_counts()
            .into_iter()
            .map(|t| {
                (
                    t.tag,
                    TagCounts {
                        msgs: t.msgs,
                        bytes: t.bytes,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_obs::{Event, Recorder};
    use std::time::Duration;

    fn send(s: &FabricStats, tag: u32, bytes: u64) {
        s.recorder().record(
            0,
            &Event::MsgSent {
                to: 1,
                tag,
                bytes,
                dur: Duration::ZERO,
            },
        );
    }

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::new();
        send(&s, 1, 10);
        send(&s, 2, 5);
        s.recorder().record(
            1,
            &Event::MsgReceived {
                from: 0,
                tag: 1,
                bytes: 10,
                wait: Duration::ZERO,
            },
        );
        assert_eq!(s.msgs_sent(), 2);
        assert_eq!(s.bytes_sent(), 15);
        assert_eq!(s.msgs_received(), 1);
        assert_eq!(s.bytes_received(), 10);
    }

    #[test]
    fn per_tag_counts() {
        let s = FabricStats::new();
        send(&s, 3, 100);
        send(&s, 3, 50);
        send(&s, 7, 1);
        assert_eq!(
            s.tag_counts(3),
            TagCounts {
                msgs: 2,
                bytes: 150
            }
        );
        assert_eq!(s.tag_counts(7), TagCounts { msgs: 1, bytes: 1 });
        assert_eq!(s.tag_counts(99), TagCounts::default());
        let all = s.all_tag_counts();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 3);
    }
}
