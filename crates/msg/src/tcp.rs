//! TCP transport: Panda on a network of ordinary workstations.
//!
//! The paper closes §5 with: "we will be able to run Panda on a network
//! of ordinary workstations without changing any code." This module
//! makes that claim true for the reproduction: [`TcpFabric`] implements
//! the same [`Transport`] contract as the in-process fabric over real
//! sockets, so the whole Panda runtime — clients, servers, collectives,
//! baselines — runs unchanged across processes or hosts.
//!
//! Wire format per message: `u64 src | u32 tag | u64 len | len bytes`,
//! little-endian. Each ordered node pair gets one connection
//! (lower rank connects to higher rank), which preserves the pairwise
//! FIFO guarantee of the transport contract. A per-endpoint receiver
//! thread multiplexes all incoming connections into one queue, exactly
//! mirroring the in-process fabric's single mailbox.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use panda_obs::{Event, Recorder};

use crate::envelope::{Bytes, Envelope, NodeId, Payload};
use crate::error::MsgError;
use crate::obs::MsgObs;
use crate::stats::FabricStats;
use crate::transport::{MatchSpec, Transport};

/// Builder for a TCP-connected set of endpoints.
#[derive(Debug)]
pub struct TcpFabric;

impl TcpFabric {
    /// Create an `n`-node fabric on localhost with OS-assigned ports,
    /// returning the endpoints (index == rank). Tests and single-host
    /// deployments use this; a real workstation network would run
    /// `TcpEndpoint::establish` on each host against a shared address
    /// list (one listener per rank), which is exactly what this helper
    /// does with all ranks local.
    pub fn localhost(n: usize, recv_timeout: Duration) -> std::io::Result<Vec<TcpEndpoint>> {
        // Bind all listeners first so every address is known.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        // Each endpoint connects to all higher ranks and accepts from
        // all lower ranks; do it rank by rank on helper threads to
        // avoid accept/connect ordering deadlocks.
        let mut handles = Vec::with_capacity(n);
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                TcpEndpoint::establish(rank, listener, &addrs, recv_timeout)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("fabric setup thread"))
            .collect()
    }
}

/// One node's TCP endpoint.
pub struct TcpEndpoint {
    node: NodeId,
    /// Write halves to every peer (self-sends short-circuit).
    peers: Vec<Option<Arc<Mutex<TcpStream>>>>,
    rx: Receiver<Envelope>,
    /// Loopback for self-sends.
    self_tx: Sender<Envelope>,
    pending: VecDeque<Envelope>,
    obs: MsgObs,
    stats: Arc<FabricStats>,
    recv_timeout: Duration,
}

impl TcpEndpoint {
    fn establish(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        recv_timeout: Duration,
    ) -> std::io::Result<TcpEndpoint> {
        let n = addrs.len();
        let (tx, rx) = unbounded::<Envelope>();
        let mut peers: Vec<Option<Arc<Mutex<TcpStream>>>> = (0..n).map(|_| None).collect();

        // Connect to higher ranks; send our rank as a hello byte 8-byte LE.
        for (peer, addr) in addrs.iter().enumerate().skip(rank + 1) {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.write_all(&(rank as u64).to_le_bytes())?;
            spawn_reader(stream.try_clone()?, tx.clone());
            peers[peer] = Some(Arc::new(Mutex::new(stream)));
        }
        // Accept from lower ranks.
        for _ in 0..rank {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut hello = [0u8; 8];
            stream.read_exact(&mut hello)?;
            let peer = u64::from_le_bytes(hello) as usize;
            spawn_reader(stream.try_clone()?, tx.clone());
            peers[peer] = Some(Arc::new(Mutex::new(stream)));
        }
        let stats = Arc::new(FabricStats::new());
        Ok(TcpEndpoint {
            node: NodeId(rank),
            peers,
            rx,
            self_tx: tx,
            pending: VecDeque::new(),
            obs: MsgObs::new(rank as u32, Arc::clone(stats.recorder())),
            stats,
            recv_timeout,
        })
    }

    /// Per-endpoint statistics (unlike the in-process fabric, each TCP
    /// endpoint counts only its own traffic — there is no shared
    /// memory to aggregate in).
    pub fn stats(&self) -> &Arc<FabricStats> {
        &self.stats
    }

    fn take_pending(&mut self, spec: MatchSpec) -> Option<Envelope> {
        let pos = self.pending.iter().position(|e| spec.matches(e))?;
        self.pending.remove(pos)
    }

    /// Report a delivered message (`wait` = time spent blocked for it).
    fn note_recv(&self, env: &Envelope, wait: Duration) {
        self.obs.emit(&Event::MsgReceived {
            from: env.src.index() as u32,
            tag: env.tag,
            bytes: env.len() as u64,
            wait,
        });
    }

    fn send_payload(&mut self, dst: NodeId, tag: u32, payload: Payload) -> Result<(), MsgError> {
        if dst.index() >= self.peers.len() {
            return Err(MsgError::InvalidNode {
                node: dst,
                num_nodes: self.peers.len(),
            });
        }
        let bytes = payload.len();
        // Socket writes genuinely block (unlike the in-process fabric's
        // buffered channels), so time them when a recorder asks.
        let start = self.obs.timed().then(Instant::now);
        if dst == self.node {
            self.self_tx
                .send(Envelope {
                    src: self.node,
                    tag,
                    payload,
                })
                .map_err(|_| MsgError::Disconnected)?;
        } else {
            let stream = self.peers[dst.index()]
                .as_ref()
                .ok_or(MsgError::Disconnected)?;
            let (head, body) = payload.as_parts();
            // Frame header plus the (small) head in one buffer; the
            // (large) body goes to the socket as-is — never copied into
            // a frame. Both writes share one lock scope so frames from
            // concurrent senders cannot interleave.
            let mut frame = Vec::with_capacity(20 + head.len());
            frame.extend_from_slice(&(self.node.index() as u64).to_le_bytes());
            frame.extend_from_slice(&tag.to_le_bytes());
            frame.extend_from_slice(&(bytes as u64).to_le_bytes());
            frame.extend_from_slice(head);
            let mut guard = stream.lock();
            guard
                .write_all(&frame)
                .map_err(|_| MsgError::Disconnected)?;
            if !body.is_empty() {
                guard.write_all(body).map_err(|_| MsgError::Disconnected)?;
            }
            drop(guard);
        }
        self.obs.emit(&Event::MsgSent {
            to: dst.index() as u32,
            tag,
            bytes: bytes as u64,
            dur: start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO),
        });
        Ok(())
    }
}

/// Read frames off one connection into the shared mailbox until EOF.
fn spawn_reader(mut stream: TcpStream, tx: Sender<Envelope>) {
    std::thread::spawn(move || {
        loop {
            let mut header = [0u8; 20];
            if stream.read_exact(&mut header).is_err() {
                return; // peer closed
            }
            let src = u64::from_le_bytes(header[0..8].try_into().unwrap()) as usize;
            let tag = u32::from_le_bytes(header[8..12].try_into().unwrap());
            let len = u64::from_le_bytes(header[12..20].try_into().unwrap()) as usize;
            let mut payload = vec![0u8; len];
            if stream.read_exact(&mut payload).is_err() {
                return;
            }
            if tx
                .send(Envelope {
                    src: NodeId(src),
                    tag,
                    payload: Payload::Inline(payload),
                })
                .is_err()
            {
                return; // endpoint dropped
            }
        }
    });
}

impl Transport for TcpEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn num_nodes(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) -> Result<(), MsgError> {
        self.send_payload(dst, tag, Payload::Inline(payload))
    }

    /// Writev-style send: the 20-byte frame header, the protocol head,
    /// and the data body go to the socket as three back-to-back writes
    /// under one stream lock, so the body is never copied into a frame
    /// buffer. The wire format is byte-identical to [`Self::send`].
    fn send_vectored(
        &mut self,
        dst: NodeId,
        tag: u32,
        head: Vec<u8>,
        body: Bytes,
    ) -> Result<(), MsgError> {
        self.send_payload(dst, tag, Payload::Framed { head, body })
    }

    fn recv_matching(&mut self, spec: MatchSpec) -> Result<Envelope, MsgError> {
        if let Some(env) = self.take_pending(spec) {
            self.note_recv(&env, Duration::ZERO);
            return Ok(env);
        }
        let start = self.obs.timed().then(Instant::now);
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if spec.matches(&env) {
                        let wait = start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
                        self.note_recv(&env, wait);
                        return Ok(env);
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MsgError::Timeout {
                        after_ms: self.recv_timeout.as_millis() as u64,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(MsgError::Disconnected),
            }
        }
    }

    fn try_recv_matching(&mut self, spec: MatchSpec) -> Result<Option<Envelope>, MsgError> {
        if let Some(env) = self.take_pending(spec) {
            self.note_recv(&env, Duration::ZERO);
            return Ok(Some(env));
        }
        loop {
            match self.rx.try_recv() {
                Ok(env) => {
                    if spec.matches(&env) {
                        self.note_recv(&env, Duration::ZERO);
                        return Ok(Some(env));
                    }
                    self.pending.push_back(env);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return Ok(None),
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    return Err(MsgError::Disconnected)
                }
            }
        }
    }

    fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.obs.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Vec<TcpEndpoint> {
        TcpFabric::localhost(n, Duration::from_secs(10)).expect("localhost fabric")
    }

    #[test]
    fn ping_pong_over_tcp() {
        let mut eps = fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let env = b.recv().unwrap();
            assert_eq!(env.src, NodeId(0));
            assert_eq!(env.payload, b"ping");
            b.send(NodeId(0), 2, b"pong".to_vec()).unwrap();
        });
        a.send(NodeId(1), 1, b"ping".to_vec()).unwrap();
        let env = a.recv_matching(MatchSpec::from(NodeId(1), 2)).unwrap();
        assert_eq!(env.payload, b"pong");
        t.join().unwrap();
    }

    #[test]
    fn self_send_over_tcp() {
        let mut eps = fabric(1);
        let ep = &mut eps[0];
        ep.send(NodeId(0), 5, vec![9, 9]).unwrap();
        assert_eq!(ep.recv().unwrap().payload, vec![9, 9]);
    }

    #[test]
    fn pairwise_fifo_and_selective_receive() {
        let mut eps = fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..50u8 {
            a.send(NodeId(1), u32::from(i % 2), vec![i]).unwrap();
        }
        // Drain odd tag first; even-tag messages buffer in order.
        let mut odd = Vec::new();
        for _ in 0..25 {
            odd.push(b.recv_matching(MatchSpec::tag(1)).unwrap().payload[0]);
        }
        assert!(odd.windows(2).all(|w| w[0] < w[1]));
        let mut even = Vec::new();
        for _ in 0..25 {
            even.push(b.recv_matching(MatchSpec::tag(0)).unwrap().payload[0]);
        }
        assert!(even.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn large_payload_crosses_intact() {
        let mut eps = fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let payload: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        a.send(NodeId(1), 3, payload).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.payload, expected);
    }

    #[test]
    fn vectored_send_is_wire_identical() {
        let mut eps = fabric(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut expected = vec![0xaau8, 0xbb];
        expected.extend_from_slice(&body);
        a.send_vectored(NodeId(1), 6, vec![0xaa, 0xbb], Bytes::Owned(body))
            .unwrap();
        let env = b.recv_matching(MatchSpec::tag(6)).unwrap();
        assert_eq!(env.src, NodeId(0));
        // The receiver reassembles one contiguous payload off the wire:
        // framing is a sender-side optimization only.
        assert_eq!(env.payload, expected);
    }

    #[test]
    fn collectives_work_over_tcp() {
        // The Group helpers are transport-generic: barrier, broadcast,
        // and gather run unchanged over sockets.
        let eps = fabric(3);
        let group = crate::group::Group::range(0, 3);
        std::thread::scope(|s| {
            for (i, mut ep) in eps.into_iter().enumerate() {
                let group = &group;
                s.spawn(move || {
                    group.barrier(&mut ep, 50).unwrap();
                    let got = if i == 0 {
                        group.broadcast(&mut ep, 51, Some(vec![42])).unwrap()
                    } else {
                        group.broadcast(&mut ep, 51, None).unwrap()
                    };
                    assert_eq!(got, vec![42]);
                    let gathered = group.gather(&mut ep, 52, vec![i as u8]).unwrap();
                    if i == 0 {
                        assert_eq!(gathered, vec![vec![0], vec![1], vec![2]]);
                    }
                });
            }
        });
    }

    #[test]
    fn all_pairs_connected() {
        let eps = fabric(4);
        std::thread::scope(|s| {
            for mut ep in eps {
                s.spawn(move || {
                    let me = ep.node();
                    for peer in 0..4 {
                        ep.send(NodeId(peer), 7, vec![me.index() as u8]).unwrap();
                    }
                    let mut seen = [false; 4];
                    for _ in 0..4 {
                        let env = ep.recv_matching(MatchSpec::tag(7)).unwrap();
                        seen[env.src.index()] = true;
                    }
                    assert!(seen.iter().all(|&x| x));
                });
            }
        });
    }
}
