//! Property tests for the message fabric: delivery is complete and
//! per-(sender, tag) FIFO no matter how receives are interleaved with
//! selective matching.

use proptest::prelude::*;

use panda_msg::{InProcFabric, MatchSpec, NodeId, Transport};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All messages sent are eventually received, exactly once, and in
    /// per-tag FIFO order, when the receiver drains tags in an
    /// arbitrary (generated) order.
    #[test]
    fn selective_drain_is_complete_and_fifo(
        sends in prop::collection::vec((0u32..4, any::<u8>()), 0..64),
        drain_order in prop::collection::vec(0u32..4, 4..=4),
    ) {
        let (mut eps, _) = InProcFabric::new(2);
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        for &(tag, byte) in &sends {
            tx.send(NodeId(1), tag, vec![byte]).unwrap();
        }
        // Drain tag by tag in the generated order (dedup keeps it a
        // permutation prefix; remaining tags drained at the end).
        let mut order: Vec<u32> = Vec::new();
        for &t in &drain_order {
            if !order.contains(&t) {
                order.push(t);
            }
        }
        for t in 0..4 {
            if !order.contains(&t) {
                order.push(t);
            }
        }
        let mut received: Vec<(u32, u8)> = Vec::new();
        for &tag in &order {
            let expect: Vec<u8> = sends
                .iter()
                .filter(|&&(t, _)| t == tag)
                .map(|&(_, b)| b)
                .collect();
            for &want in &expect {
                let env = rx.recv_matching(MatchSpec::tag(tag)).unwrap();
                // FIFO per tag: payloads arrive in send order.
                prop_assert_eq!(env.payload[0], want);
                received.push((tag, env.payload[0]));
            }
        }
        prop_assert_eq!(received.len(), sends.len());
        // Nothing left over.
        prop_assert_eq!(rx.try_recv_matching(MatchSpec::any()).unwrap(), None);
    }

    /// Wildcard receive sees the exact global send order for a single
    /// sender.
    #[test]
    fn wildcard_receive_preserves_single_sender_order(
        sends in prop::collection::vec((0u32..8, any::<u8>()), 1..64),
    ) {
        let (mut eps, _) = InProcFabric::new(2);
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        for &(tag, byte) in &sends {
            tx.send(NodeId(1), tag, vec![byte]).unwrap();
        }
        for &(tag, byte) in &sends {
            let env = rx.recv().unwrap();
            prop_assert_eq!(env.tag, tag);
            prop_assert_eq!(env.payload[0], byte);
        }
    }

    /// Mixing buffered (pending-queue) and fresh messages never loses
    /// or duplicates anything: receive a random subset by specific
    /// tag first, then drain the rest with wildcards.
    #[test]
    fn pending_queue_no_loss_no_duplication(
        sends in prop::collection::vec((0u32..3, any::<u8>()), 1..48),
        pick in 0u32..3,
    ) {
        let (mut eps, _) = InProcFabric::new(2);
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        for &(tag, byte) in &sends {
            tx.send(NodeId(1), tag, vec![byte]).unwrap();
        }
        let picked: usize = sends.iter().filter(|&&(t, _)| t == pick).count();
        for _ in 0..picked {
            let env = rx.recv_matching(MatchSpec::tag(pick)).unwrap();
            prop_assert_eq!(env.tag, pick);
        }
        let mut rest = 0;
        while rx.try_recv_matching(MatchSpec::any()).unwrap().is_some() {
            rest += 1;
        }
        prop_assert_eq!(picked + rest, sends.len());
    }
}
