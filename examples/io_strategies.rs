//! Compare the three collective-I/O strategies on identical workloads:
//! server-directed (Panda), two-phase [Bordawekar93], and naive
//! client-directed I/O — the live counterpart of the `ablation` bench.
//!
//! All three write byte-identical files; what differs is the access
//! pattern each I/O node's file system observes. The run prints, per
//! strategy: disk operations, seeks, mean request size, and the elapsed
//! time the calibrated SP2 model assigns to that access pattern.
//!
//! Run with: `cargo run --example io_strategies`

use std::sync::Arc;

use panda_core::baseline::naive::naive_write;
use panda_core::baseline::two_phase::two_phase_write;
use panda_core::{ArrayMeta, OpKind, PandaConfig, PandaSystem, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_model::baseline_model::{model_naive, model_two_phase};
use panda_model::{simulate, CollectiveSpec, Sp2Machine};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const SERVERS: usize = 2;

fn meta() -> ArrayMeta {
    // Memory: column strips over 4 clients; disk: row slabs — a layout
    // pair that punishes uncoordinated clients.
    let shape = Shape::new(&[64, 64]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[1, 4]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, SERVERS).unwrap();
    ArrayMeta::new("field", memory, disk).unwrap()
}

fn launch(meta: &ArrayMeta) -> (PandaSystem, Vec<panda_core::PandaClient>, Vec<Arc<MemFs>>) {
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let (system, clients) = PandaSystem::builder()
        .config(PandaConfig::new(meta.num_clients(), SERVERS).clone())
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap();
    (system, clients, mems)
}

fn report(label: &str, mems: &[Arc<MemFs>], modeled_elapsed: f64) {
    let writes: u64 = mems.iter().map(|m| m.stats().writes()).sum();
    let seeks: u64 = mems.iter().map(|m| m.stats().seeks()).sum();
    let bytes: u64 = mems.iter().map(|m| m.stats().bytes_written()).sum();
    println!(
        "{label:<16} {writes:>9} {seeks:>7} {:>12.0} {modeled_elapsed:>13.3}",
        bytes as f64 / writes.max(1) as f64
    );
}

fn main() {
    let meta = meta();
    let machine = Sp2Machine::nas_sp2();
    let datas: Vec<Vec<u8>> = (0..meta.num_clients())
        .map(|r| vec![(r + 1) as u8; meta.client_bytes(r)])
        .collect();
    println!(
        "workload: {} written to {}",
        meta.memory().describe(),
        meta.disk().describe()
    );
    println!();
    println!(
        "{:<16} {:>9} {:>7} {:>12} {:>13}",
        "strategy", "disk ops", "seeks", "avg req (B)", "SP2 model (s)"
    );

    // Server-directed.
    let (system, mut clients, mems) = launch(&meta);
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || {
                client
                    .write_set(&WriteSet::new().array(meta, "field", data.as_slice()))
                    .unwrap()
            });
        }
    });
    let sd = simulate(
        &machine,
        &CollectiveSpec {
            arrays: vec![meta.clone()],
            op: OpKind::Write,
            num_servers: SERVERS,
            subchunk_bytes: 1 << 20,
            fast_disk: false,
            section: None,
        },
    );
    report("server-directed", &mems, sd.elapsed);
    let reference = mems
        .iter()
        .enumerate()
        .map(|(s, m)| m.contents(&format!("field.s{s}")).unwrap())
        .collect::<Vec<_>>();
    system.shutdown(clients).unwrap();

    // Two-phase.
    let (system, mut clients, mems) = launch(&meta);
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || two_phase_write(client, meta, "field", data, 1 << 20).unwrap());
        }
    });
    let tp = model_two_phase(&machine, &meta, SERVERS, OpKind::Write, 1 << 20);
    report("two-phase", &mems, tp.elapsed);
    for (s, m) in mems.iter().enumerate() {
        assert_eq!(m.contents(&format!("field.s{s}")).unwrap(), reference[s]);
    }
    system.shutdown(clients).unwrap();

    // Naive client-directed.
    let (system, mut clients, mems) = launch(&meta);
    std::thread::scope(|s| {
        for (client, data) in clients.iter_mut().zip(&datas) {
            let meta = &meta;
            s.spawn(move || naive_write(client, meta, "field", data).unwrap());
        }
    });
    let nv = model_naive(&machine, &meta, SERVERS, OpKind::Write);
    report("naive", &mems, nv.elapsed);
    for (s, m) in mems.iter().enumerate() {
        assert_eq!(m.contents(&format!("field.s{s}")).unwrap(), reference[s]);
    }
    system.shutdown(clients).unwrap();

    println!();
    println!("all three strategies produced byte-identical files; only the access");
    println!("pattern differs — and on 1995 disks, the access pattern is everything.");
}
