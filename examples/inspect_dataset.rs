//! Inspect a Panda dataset: what actually lands on the I/O nodes.
//!
//! Writes a two-array group (with a checkpoint and schema manifest) to
//! real files, then plays the role of an offline tool: it reloads the
//! group definition from the manifest alone, walks each I/O node's
//! directory, and cross-checks every file's size against the planner's
//! prediction. Finally it replays the write in memory under a
//! `TimelineRecorder` and prints the first few disk accesses so you
//! can *see* the strictly sequential write pattern server-directed
//! I/O produces.
//!
//! Run with: `cargo run --example inspect_dataset`

use std::sync::Arc;

use panda_core::{build_server_plan, ArrayGroup, GroupData, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, LocalFs, MemFs};
use panda_obs::{EventKind, Recorder, TimelineRecorder};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const SERVERS: usize = 2;

fn group_arrays() -> ArrayGroup {
    let shape = Shape::new(&[64, 64]).unwrap();
    let mesh = Mesh::new(&[2, 2]).unwrap();
    let memory = DataSchema::block_all(shape.clone(), ElementType::F64, mesh).unwrap();
    let t = panda_core::ArrayMeta::new(
        "temperature",
        memory.clone(),
        DataSchema::traditional_order(shape.clone(), ElementType::F64, SERVERS).unwrap(),
    )
    .unwrap();
    let p = panda_core::ArrayMeta::natural("pressure", memory).unwrap();
    let mut g = ArrayGroup::new("run42");
    g.include(t).include(p);
    g
}

fn main() {
    let root = std::env::temp_dir().join(format!("panda-inspect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let roots: Vec<_> = (0..SERVERS)
        .map(|s| root.join(format!("ionode{s}")))
        .collect();

    // --- produce a dataset -------------------------------------------------
    let (system, mut clients) = PandaSystem::builder()
        .config(PandaConfig::new(4, SERVERS).clone())
        .launch(|s| Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
        .unwrap();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            s.spawn(move || {
                let mut g = group_arrays();
                let mut data = GroupData::zeroed(&g, client.rank());
                for (i, b) in (0..data.len()).collect::<Vec<_>>().into_iter().zip(0u8..) {
                    data.buffer_mut(i).fill(b + 1);
                }
                g.timestep(client, &data.slices()).unwrap();
                g.checkpoint(client, &data.slices()).unwrap();
                if client.rank() == 0 {
                    g.save_schema(client).unwrap();
                }
            });
        }
    });

    // --- inspect it like an offline tool -----------------------------------
    println!("dataset root: {}", root.display());
    let loaded = ArrayGroup::load(&mut clients[0], "run42").unwrap();
    println!(
        "manifest: group '{}', {} arrays, {} timesteps taken",
        loaded.name(),
        loaded.arrays().len(),
        loaded.timesteps_taken()
    );
    for meta in loaded.arrays() {
        println!("  array '{}':", meta.name());
        println!("    memory: {}", meta.memory().describe());
        println!(
            "    disk:   {} (natural: {})",
            meta.disk().describe(),
            meta.is_natural()
        );
    }
    println!();

    // Every file's size must match the planner's total for its server.
    let mut checked = 0;
    for (s, r) in roots.iter().enumerate() {
        for meta in loaded.arrays() {
            let plan = build_server_plan(meta, s, SERVERS, 1 << 20);
            for tag_kind in ["ts0", "ckpt-a"] {
                let path = r
                    .join("run42")
                    .join(format!("{}.{tag_kind}.s{s}", meta.name()));
                let size = std::fs::metadata(&path).unwrap().len();
                assert_eq!(size, plan.total_bytes, "{}", path.display());
                checked += 1;
                println!(
                    "i/o node {s}: {:<28} {:>8} bytes  (= planner total ✓)",
                    path.file_name().unwrap().to_string_lossy(),
                    size
                );
            }
        }
    }
    println!("{checked} files verified against the planner\n");
    system.shutdown(clients).unwrap();

    // --- show the access pattern via a recorded in-memory run --------------
    let rec = Arc::new(TimelineRecorder::new());
    let config = PandaConfig::new(4, SERVERS).with_recorder(rec.clone());
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    std::thread::scope(|s| {
        for client in clients.iter_mut() {
            s.spawn(move || {
                let mut g = group_arrays();
                let data = GroupData::zeroed(&g, client.rank());
                g.timestep(client, &data.slices()).unwrap();
            });
        }
    });
    println!("access trace of i/o node 0 (first 8 disk writes):");
    let node0 = 4; // fabric ranks: clients 0..4, then servers
    for e in rec
        .timeline()
        .unwrap()
        .iter()
        .filter(|e| e.node == node0 && e.kind == EventKind::FsWrite)
        .take(8)
    {
        println!(
            "  write {:>6} B  {}  ({})",
            e.bytes,
            e.label.as_deref().unwrap_or("?"),
            if e.sequential == Some(true) {
                "sequential"
            } else {
                "seek"
            }
        );
    }
    let snap = rec.counters().unwrap();
    println!(
        "note: {} of {} accesses were sequential — the defining property",
        snap.fs_sequential,
        snap.fs_sequential + snap.fs_seeks
    );
    println!("of server-directed i/o.");
    system.shutdown(clients).unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
