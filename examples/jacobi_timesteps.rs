//! The paper's Figure 2 scenario as a real SPMD application: a Jacobi
//! heat-diffusion solver whose timestep output, checkpointing, and
//! restart all go through Panda's collective interface.
//!
//! Eight compute nodes (threads) run a 2-D Jacobi iteration on a
//! 256x256 grid distributed `BLOCK,BLOCK` over a 4x2 mesh (halo
//! exchange over the same message fabric Panda uses). Every few steps
//! the `ArrayGroup` dumps the temperature and residual arrays; halfway
//! through it checkpoints; then we simulate a crash and restart from
//! the checkpoint, verifying the recomputed trajectory matches.
//!
//! Run with: `cargo run --example jacobi_timesteps`

use std::sync::Arc;

use panda_core::{ArrayGroup, ArrayMeta, GroupData, PandaConfig, PandaSystem};
use panda_fs::{FileSystem, MemFs};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const N: usize = 256;
const MESH: [usize; 2] = [4, 2];
const STEPS: usize = 12;
const DUMP_EVERY: usize = 4;
const CHECKPOINT_AT: usize = 6;

fn arrays() -> (ArrayMeta, ArrayMeta) {
    let shape = Shape::new(&[N, N]).unwrap();
    let mesh = Mesh::new(&MESH).unwrap();
    let memory = DataSchema::block_all(shape.clone(), ElementType::F64, mesh).unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, 3).unwrap();
    let temperature = ArrayMeta::new("temperature", memory.clone(), disk.clone()).unwrap();
    let residual = ArrayMeta::new("residual", memory, disk).unwrap();
    (temperature, residual)
}

/// One node's share of the grid, with a one-cell halo all around.
struct LocalGrid {
    rows: usize,
    cols: usize,
    row0: usize,
    col0: usize,
    /// (rows+2) x (cols+2), halo included, row-major.
    cells: Vec<f64>,
}

impl LocalGrid {
    fn new(meta: &ArrayMeta, rank: usize) -> Self {
        let region = meta.client_region(rank);
        let rows = region.extent(0);
        let cols = region.extent(1);
        LocalGrid {
            rows,
            cols,
            row0: region.lo()[0],
            col0: region.lo()[1],
            cells: vec![0.0; (rows + 2) * (cols + 2)],
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.cells[r * (self.cols + 2) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.cells[r * (self.cols + 2) + c] = v;
    }

    /// Initialize: hot left wall of the global domain, cold elsewhere.
    fn init(&mut self) {
        for r in 1..=self.rows {
            for c in 1..=self.cols {
                let gc = self.col0 + c - 1;
                let v = if gc == 0 { 100.0 } else { 0.0 };
                self.set(r, c, v);
            }
        }
    }

    /// Interior bytes (halo stripped) in the chunk's row-major layout.
    fn interior_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows * self.cols * 8);
        for r in 1..=self.rows {
            for c in 1..=self.cols {
                out.extend_from_slice(&self.at(r, c).to_le_bytes());
            }
        }
        out
    }

    fn load_interior(&mut self, bytes: &[u8]) {
        let mut i = 0;
        for r in 1..=self.rows {
            for c in 1..=self.cols {
                let v = f64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
                self.set(r, c, v);
                i += 8;
            }
        }
    }

    /// One Jacobi sweep (halos assumed current); returns the residual
    /// field as bytes and updates in place.
    fn sweep(&mut self) -> Vec<u8> {
        let mut next = self.cells.clone();
        let mut residual = Vec::with_capacity(self.rows * self.cols * 8);
        for r in 1..=self.rows {
            for c in 1..=self.cols {
                let gr = self.row0 + r - 1;
                let gc = self.col0 + c - 1;
                // Global boundary cells are fixed (Dirichlet).
                let v = if gr == 0 || gr == N - 1 || gc == 0 || gc == N - 1 {
                    self.at(r, c)
                } else {
                    0.25 * (self.at(r - 1, c)
                        + self.at(r + 1, c)
                        + self.at(r, c - 1)
                        + self.at(r, c + 1))
                };
                residual.extend_from_slice(&(v - self.at(r, c)).abs().to_le_bytes());
                next[r * (self.cols + 2) + c] = v;
            }
        }
        self.cells = next;
        residual
    }
}

/// Exchange halos between neighbouring ranks over a dedicated fabric.
fn exchange_halos(grid: &mut LocalGrid, rank: usize, fabric: &mut panda_msg::InProcEndpoint) {
    use panda_msg::{MatchSpec, NodeId, Transport};
    let (pr, pc) = (rank / MESH[1], rank % MESH[1]);
    // (neighbour rank, tag, is_row_edge, our edge index, their halo index)
    let mut plans: Vec<(usize, u32, bool, usize, usize)> = Vec::new();
    if pr > 0 {
        plans.push((rank - MESH[1], 0, true, 1, grid.rows + 1));
    }
    if pr + 1 < MESH[0] {
        plans.push((rank + MESH[1], 1, true, grid.rows, 0));
    }
    if pc > 0 {
        plans.push((rank - 1, 2, false, 1, grid.cols + 1));
    }
    if pc + 1 < MESH[1] {
        plans.push((rank + 1, 3, false, grid.cols, 0));
    }
    // Send our edges...
    for &(nbr, tag, row_edge, ours, _) in &plans {
        let mut edge = Vec::new();
        if row_edge {
            for c in 1..=grid.cols {
                edge.extend_from_slice(&grid.at(ours, c).to_le_bytes());
            }
        } else {
            for r in 1..=grid.rows {
                edge.extend_from_slice(&grid.at(r, ours).to_le_bytes());
            }
        }
        fabric.send(NodeId(nbr), tag, edge).unwrap();
    }
    // ... and fill our halos with theirs. A neighbour's tag pairs with
    // the opposite direction: 0<->1, 2<->3.
    for &(nbr, tag, row_edge, _, theirs) in &plans {
        let want = tag ^ 1;
        let env = fabric
            .recv_matching(MatchSpec::from(NodeId(nbr), want))
            .unwrap();
        let vals: Vec<f64> = env
            .payload
            .contiguous()
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        if row_edge {
            for (c, v) in vals.iter().enumerate() {
                grid.set(theirs, c + 1, *v);
            }
        } else {
            for (r, v) in vals.iter().enumerate() {
                grid.set(r + 1, theirs, *v);
            }
        }
    }
}

fn main() {
    let (temperature, residual) = arrays();
    let num_clients = temperature.num_clients();

    let (system, mut clients) = PandaSystem::builder()
        .config(PandaConfig::new(num_clients, 3).clone())
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    // A second fabric for the application's own halo exchange.
    let (halo_eps, _) = panda_msg::InProcFabric::new(num_clients);

    std::thread::scope(|scope| {
        for (client, mut halo) in clients.iter_mut().zip(halo_eps) {
            let (temperature, residual) = (&temperature, &residual);
            scope.spawn(move || {
                let rank = client.rank();
                let mut group = ArrayGroup::new("jacobi");
                group.include(temperature.clone()).include(residual.clone());

                let mut grid = LocalGrid::new(temperature, rank);
                grid.init();

                let mut at_checkpoint: Option<Vec<u8>> = None;
                for step in 0..STEPS {
                    exchange_halos(&mut grid, rank, &mut halo);
                    let res = grid.sweep();
                    if (step + 1) % DUMP_EVERY == 0 {
                        let temp = grid.interior_bytes();
                        group.timestep(client, &[&temp, &res]).unwrap();
                        if rank == 0 {
                            println!(
                                "step {:>2}: dumped timestep {}",
                                step + 1,
                                group.timesteps_taken() - 1
                            );
                        }
                    }
                    if step + 1 == CHECKPOINT_AT {
                        let temp = grid.interior_bytes();
                        group.checkpoint(client, &[&temp, &res]).unwrap();
                        at_checkpoint = Some(temp);
                        if rank == 0 {
                            println!("step {:>2}: checkpointed", step + 1);
                        }
                    }
                }
                let final_state = grid.interior_bytes();

                // "Crash": wipe the local state, restart from the
                // checkpoint, recompute the remaining steps.
                let mut data = GroupData::zeroed(&group, rank);
                group.restart(client, &mut data.slices_mut()).unwrap();
                assert_eq!(
                    data.buffer(0),
                    &at_checkpoint.unwrap()[..],
                    "restart returns the checkpointed temperature"
                );
                grid.load_interior(data.buffer(0));
                for _ in CHECKPOINT_AT..STEPS {
                    exchange_halos(&mut grid, rank, &mut halo);
                    grid.sweep();
                }
                assert_eq!(
                    grid.interior_bytes(),
                    final_state,
                    "recomputed trajectory matches the original"
                );
                if rank == 0 {
                    println!("restart from checkpoint reproduced the final state exactly");
                }
            });
        }
    });

    system.shutdown(clients).unwrap();
    println!(
        "done: {STEPS} steps, {} timestep dumps, 1 checkpoint+restart",
        STEPS / DUMP_EVERY
    );
}
