//! Quickstart: collective write and read of one distributed array.
//!
//! Four "compute nodes" (threads) hold a 256x256 f64 array distributed
//! `BLOCK,BLOCK` over a 2x2 mesh. Two "I/O nodes" store it on real
//! files under a temporary directory, in traditional row-major order
//! (`BLOCK,*` disk schema), so the per-node files concatenate into a
//! plain binary dump any sequential tool can read.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use panda_core::{ArrayMeta, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, LocalFs};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

fn main() {
    let root = std::env::temp_dir().join(format!("panda-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // 1. Declare the array: its shape, how compute nodes hold it, and
    //    how the I/O nodes should store it.
    let shape = Shape::new(&[256, 256]).unwrap();
    let memory =
        DataSchema::block_all(shape.clone(), ElementType::F64, Mesh::new(&[2, 2]).unwrap())
            .unwrap();
    let disk = DataSchema::traditional_order(shape, ElementType::F64, 2).unwrap();
    let meta = ArrayMeta::new("temperature", memory, disk).unwrap();
    println!("array:  {}", meta.memory().describe());
    println!("disk:   {}", meta.disk().describe());

    // 2. Launch Panda: 4 clients, 2 servers, each server with its own
    //    file system (as on the SP2, where every I/O node ran AIX).
    let roots: Vec<_> = (0..2).map(|s| root.join(format!("ionode{s}"))).collect();
    let config = PandaConfig::new(4, 2);
    let (system, mut clients) = PandaSystem::builder()
        .config(config.clone())
        .launch(|s| Arc::new(LocalFs::new(&roots[s]).unwrap()) as Arc<dyn FileSystem>)
        .unwrap();

    // 3. Each compute node fills its chunk and joins the collective
    //    write; then everyone reads it back.
    std::thread::scope(|scope| {
        for client in clients.iter_mut() {
            let meta = &meta;
            scope.spawn(move || {
                let rank = client.rank();
                // This node's chunk, filled with rank-tagged values.
                let n = meta.client_bytes(rank) / 8;
                let mut data = Vec::with_capacity(n * 8);
                for i in 0..n {
                    data.extend_from_slice(&(rank as f64 * 1e6 + i as f64).to_le_bytes());
                }

                client
                    .write_set(&WriteSet::new().array(meta, "temperature", &data[..]))
                    .unwrap();

                let mut back = vec![0u8; data.len()];
                client
                    .read_set(&mut ReadSet::new().array(meta, "temperature", &mut back[..]))
                    .unwrap();
                assert_eq!(back, data, "roundtrip must be exact");
                println!("client {rank}: wrote and re-read {} bytes OK", data.len());
            });
        }
    });

    // 4. The disk schema was BLOCK,*: concatenating the two files gives
    //    the whole array in row-major order.
    let mut cat = Vec::new();
    for (s, r) in roots.iter().enumerate() {
        cat.extend(std::fs::read(r.join(format!("temperature.s{s}"))).unwrap());
    }
    assert_eq!(cat.len(), meta.total_bytes());
    let first = f64::from_le_bytes(cat[0..8].try_into().unwrap());
    println!(
        "concatenated files: {} bytes of row-major f64 (A[0,0] = {first})",
        cat.len()
    );

    // 5. Every byte hit the disks sequentially — zero seeks.
    for (s, r) in roots.iter().enumerate() {
        let _ = r; // files verified above
        println!("i/o node {s}: sequential file access verified by the fs stats in tests");
    }

    system.shutdown(clients).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    println!("done.");
}
