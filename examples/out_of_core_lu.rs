//! Out-of-core blocked LU factorization through Panda collectives.
//!
//! The paper's related work highlights out-of-core computation as the
//! showcase for directed I/O ([Kotz95b] implements out-of-core LU on
//! disk-directed I/O). This example does the same on server-directed
//! I/O: an N×N matrix lives on the I/O nodes as column panels, and the
//! compute nodes keep a working set of at most **two panels** in memory
//! while performing a right-looking blocked LU factorization (no
//! pivoting; the matrix is made diagonally dominant).
//!
//! Every panel movement is a Panda collective (`read`/`write` of a
//! `BLOCK,*`-distributed array); the factorization's broadcasts ride a
//! `panda_msg::Group` on a second fabric. The result is verified
//! against a sequential LU of the same matrix.
//!
//! Run with: `cargo run --release --example out_of_core_lu`

use std::sync::Arc;

use panda_core::{ArrayMeta, PandaConfig, PandaSystem, ReadSet, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_msg::{Group, InProcFabric};
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const N: usize = 128; // matrix dimension
const CLIENTS: usize = 4; // compute nodes (row blocks)
const SERVERS: usize = 2; // i/o nodes
const W: usize = N / CLIENTS; // panel width == rows per client
const PANELS: usize = N / W;

/// Deterministic test matrix: uniform-ish off-diagonal entries with a
/// dominant diagonal so unpivoted LU is stable.
fn a0(i: usize, j: usize) -> f64 {
    let h = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503)) % 1000;
    let base = h as f64 / 1000.0;
    if i == j {
        base + N as f64
    } else {
        base
    }
}

/// The panel array descriptor: N×W f64, rows `BLOCK` over the clients.
fn panel_meta() -> ArrayMeta {
    let shape = Shape::new(&[N, W]).unwrap();
    let memory = DataSchema::new(
        shape,
        ElementType::F64,
        &[panda_schema::Dist::Block, panda_schema::Dist::Star],
        Mesh::line(CLIENTS).unwrap(),
    )
    .unwrap();
    ArrayMeta::natural("panel", memory).unwrap()
}

/// My rows of panel `j` of the initial matrix, packed row-major.
fn initial_panel(rank: usize, j: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(W * W * 8);
    for i in rank * W..(rank + 1) * W {
        for c in 0..W {
            out.extend_from_slice(&a0(i, j * W + c).to_le_bytes());
        }
    }
    out
}

fn to_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect()
}

fn to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Sequential reference LU (no pivoting) of the full matrix.
fn reference_lu() -> Vec<f64> {
    let mut a: Vec<f64> = (0..N * N).map(|x| a0(x / N, x % N)).collect();
    for k in 0..N {
        for i in k + 1..N {
            a[i * N + k] /= a[k * N + k];
            let lik = a[i * N + k];
            for j in k + 1..N {
                a[i * N + j] -= lik * a[k * N + j];
            }
        }
    }
    a
}

/// Factor the W×W diagonal block in place (packed L\U, unit lower L).
fn factor_block(b: &mut [f64]) {
    for k in 0..W {
        for i in k + 1..W {
            b[i * W + k] /= b[k * W + k];
            let lik = b[i * W + k];
            for j in k + 1..W {
                b[i * W + j] -= lik * b[k * W + j];
            }
        }
    }
}

fn main() {
    let meta = panel_meta();
    let (system, mut clients) = PandaSystem::builder()
        .config(
            PandaConfig::new(CLIENTS, SERVERS)
                .with_subchunk_bytes(8 << 10)
                .clone(),
        )
        .launch(|_| Arc::new(MemFs::new()) as Arc<dyn FileSystem>)
        .unwrap();
    let (bcast_eps, _) = InProcFabric::new(CLIENTS);
    let group = Group::range(0, CLIENTS);

    println!(
        "out-of-core LU: {N}x{N} f64 in {PANELS} column panels of width {W}; \
         {CLIENTS} compute nodes hold ≤ 2 panels each; {SERVERS} i/o nodes"
    );

    std::thread::scope(|s| {
        for (client, mut bcast) in clients.iter_mut().zip(bcast_eps) {
            let (meta, group) = (&meta, &group);
            s.spawn(move || {
                let rank = client.rank();
                // Stage the initial matrix onto the I/O nodes, panel by
                // panel (the "data bigger than memory" starting state).
                for j in 0..PANELS {
                    let p = initial_panel(rank, j);
                    client
                        .write_set(&WriteSet::new().array(
                            meta,
                            format!("lu/panel{j}"),
                            p.as_slice(),
                        ))
                        .unwrap();
                }

                // Right-looking blocked factorization. Working set: the
                // factor panel `pk` plus one update panel.
                for k in 0..PANELS {
                    let mut buf = vec![0u8; meta.client_bytes(rank)];
                    client
                        .read_set(&mut ReadSet::new().array(
                            meta,
                            format!("lu/panel{k}"),
                            buf.as_mut_slice(),
                        ))
                        .unwrap();
                    let mut pk = to_f64(&buf);

                    // Factor the diagonal block (owned by client k,
                    // since panel width == rows per client) and share it.
                    let root = panda_msg::NodeId(k);
                    let diag = if rank == k {
                        factor_block(&mut pk);
                        let packed = to_bytes(&pk);
                        group
                            .broadcast_from(&mut bcast, root, 1, Some(packed))
                            .unwrap()
                    } else {
                        group.broadcast_from(&mut bcast, root, 1, None).unwrap()
                    };
                    let diag = to_f64(&diag);

                    // My rows strictly below the diagonal block:
                    // L(i,:) = A(i,:) · U⁻¹ (backward substitution per row).
                    if rank > k {
                        for row in pk.chunks_exact_mut(W) {
                            for c in 0..W {
                                let mut v = row[c];
                                for t in 0..c {
                                    v -= row[t] * diag[t * W + c];
                                }
                                row[c] = v / diag[c * W + c];
                            }
                        }
                    }
                    client
                        .write_set(&WriteSet::new().array(
                            meta,
                            format!("lu/panel{k}"),
                            to_bytes(&pk).as_slice(),
                        ))
                        .unwrap();

                    // Trailing update, one panel at a time.
                    for j in k + 1..PANELS {
                        let mut jbuf = vec![0u8; meta.client_bytes(rank)];
                        client
                            .read_set(&mut ReadSet::new().array(
                                meta,
                                format!("lu/panel{j}"),
                                jbuf.as_mut_slice(),
                            ))
                            .unwrap();
                        let mut pj = to_f64(&jbuf);

                        // U block of panel j: L_kk⁻¹ · A(k-block, j),
                        // computed by client k and broadcast.
                        let ukj = if rank == k {
                            // Forward substitution with unit lower L.
                            for c in 0..W {
                                for r in 1..W {
                                    let mut v = pj[r * W + c];
                                    for t in 0..r {
                                        v -= diag[r * W + t] * pj[t * W + c];
                                    }
                                    pj[r * W + c] = v;
                                }
                            }
                            group
                                .broadcast_from(&mut bcast, root, 2, Some(to_bytes(&pj)))
                                .unwrap()
                        } else {
                            group.broadcast_from(&mut bcast, root, 2, None).unwrap()
                        };
                        let ukj = to_f64(&ukj);
                        if rank == k {
                            pj = ukj.clone();
                        }

                        // My rows below: A(i, j) -= L(i, k-panel) · U_kj.
                        if rank > k {
                            for (r, row) in pj.chunks_exact_mut(W).enumerate() {
                                let l_row = &pk[r * W..(r + 1) * W];
                                for c in 0..W {
                                    let mut acc = 0.0;
                                    for t in 0..W {
                                        acc += l_row[t] * ukj[t * W + c];
                                    }
                                    row[c] -= acc;
                                }
                            }
                        }
                        client
                            .write_set(&WriteSet::new().array(
                                meta,
                                format!("lu/panel{j}"),
                                to_bytes(&pj).as_slice(),
                            ))
                            .unwrap();
                    }
                }

                // Verify my rows of every panel against the sequential
                // reference factorization.
                let reference = reference_lu();
                let mut max_err = 0.0f64;
                for j in 0..PANELS {
                    let mut buf = vec![0u8; meta.client_bytes(rank)];
                    client
                        .read_set(&mut ReadSet::new().array(
                            meta,
                            format!("lu/panel{j}"),
                            buf.as_mut_slice(),
                        ))
                        .unwrap();
                    let p = to_f64(&buf);
                    for r in 0..W {
                        let gi = rank * W + r;
                        for c in 0..W {
                            let gj = j * W + c;
                            let err = (p[r * W + c] - reference[gi * N + gj]).abs();
                            max_err = max_err.max(err);
                        }
                    }
                }
                assert!(
                    max_err < 1e-9,
                    "client {rank}: max |LU - reference| = {max_err}"
                );
                if rank == 0 {
                    println!(
                        "factorization verified against the sequential reference \
                         (max error {max_err:.2e})"
                    );
                }
            });
        }
    });

    println!(
        "panel traffic: {} collectives moved {:.1} MB through the i/o nodes",
        // k loop: 1 read + 1 write per factor panel + (read+write) per
        // trailing panel; plus initial stage-in and final verify reads.
        PANELS + PANELS * 2 + PANELS * (PANELS - 1) + PANELS,
        system.fabric_stats.bytes_sent() as f64 / (1 << 20) as f64
    );
    system.shutdown(clients).unwrap();
    println!("done.");
}
