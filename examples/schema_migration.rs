//! Schema rearrangement: the paper's motivating use of non-natural disk
//! schemas (§2–3).
//!
//! A 3-D array computed as `BLOCK,BLOCK,BLOCK` across 8 compute nodes is
//! written twice:
//!
//! 1. with **natural chunking** — fastest, but the files hold 3-D
//!    chunks, so a sequential consumer would need Panda to read them;
//! 2. with a **`BLOCK,*,*` traditional-order disk schema** — Panda
//!    reorganizes in flight, and a plain sequential "visualizer" (here:
//!    a function that just concatenates the files) gets a row-major
//!    binary dump it can scan directly.
//!
//! The example then verifies the two representations agree and shows
//! the extra message traffic reorganization costs, mirroring the
//! paper's natural-vs-traditional comparison.
//!
//! Run with: `cargo run --example schema_migration`

use std::sync::Arc;

use panda_core::{ArrayMeta, PandaConfig, PandaSystem, WriteSet};
use panda_fs::{FileSystem, MemFs};
use panda_schema::copy::offset_in_region;
use panda_schema::{DataSchema, ElementType, Mesh, Shape};

const DIMS: [usize; 3] = [32, 32, 32];
const SERVERS: usize = 4;

fn fill_chunk(meta: &ArrayMeta, rank: usize) -> Vec<u8> {
    // Element value = its global row-major index (as f32).
    let region = meta.client_region(rank);
    let shape = region.shape().expect("nonempty");
    let global_shape = meta.shape();
    let mut out = vec![0u8; meta.client_bytes(rank)];
    for local in shape.iter_indices() {
        let global: Vec<usize> = local
            .iter()
            .zip(region.lo())
            .map(|(&l, &o)| l + o)
            .collect();
        let lin = global_shape.linearize(&global) as f32;
        let off = offset_in_region(&region, &global, 4);
        out[off..off + 4].copy_from_slice(&lin.to_le_bytes());
    }
    out
}

fn run_write(meta: &ArrayMeta, label: &str) -> (Vec<Arc<MemFs>>, u64, u64) {
    let mems: Vec<Arc<MemFs>> = (0..SERVERS).map(|_| Arc::new(MemFs::new())).collect();
    let handles = mems.clone();
    let (system, mut clients) = PandaSystem::builder()
        .config(PandaConfig::new(meta.num_clients(), SERVERS).clone())
        .launch(move |s| Arc::clone(&handles[s]) as Arc<dyn FileSystem>)
        .unwrap();
    std::thread::scope(|scope| {
        for client in clients.iter_mut() {
            scope.spawn(move || {
                let data = fill_chunk(meta, client.rank());
                client
                    .write_set(&WriteSet::new().array(meta, "density", &data[..]))
                    .unwrap();
            });
        }
    });
    let msgs = system.fabric_stats.msgs_sent();
    let bytes = system.fabric_stats.bytes_sent();
    system.shutdown(clients).unwrap();
    println!(
        "{label}: {} messages, {:.1} MB on the fabric",
        msgs,
        bytes as f64 / (1 << 20) as f64
    );
    (mems, msgs, bytes)
}

fn main() {
    let shape = Shape::new(&DIMS).unwrap();
    let mesh = Mesh::new(&[2, 2, 2]).unwrap();
    let memory = DataSchema::block_all(shape.clone(), ElementType::F32, mesh).unwrap();

    let natural = ArrayMeta::natural("density", memory.clone()).unwrap();
    let traditional = ArrayMeta::new(
        "density",
        memory,
        DataSchema::traditional_order(shape.clone(), ElementType::F32, SERVERS).unwrap(),
    )
    .unwrap();
    println!("memory schema:      {}", natural.memory().describe());
    println!("natural disk:       {}", natural.disk().describe());
    println!("traditional disk:   {}", traditional.disk().describe());
    println!();

    let (_nat_fs, nat_msgs, _) = run_write(&natural, "natural chunking  ");
    let (trad_fs, trad_msgs, _) = run_write(&traditional, "traditional order ");
    println!(
        "reorganization cost: {:.2}x the messages of natural chunking",
        trad_msgs as f64 / nat_msgs as f64
    );
    println!();

    // The sequential consumer: concatenate the traditional-order files
    // and scan them as a flat row-major f32 array.
    let mut flat = Vec::new();
    for (s, fs) in trad_fs.iter().enumerate() {
        flat.extend(fs.contents(&format!("density.s{s}")).unwrap());
    }
    let n = DIMS.iter().product::<usize>();
    assert_eq!(flat.len(), n * 4);
    let mut ok = true;
    for (lin, chunk) in flat.chunks_exact(4).enumerate() {
        let v = f32::from_le_bytes(chunk.try_into().unwrap());
        ok &= v == lin as f32;
    }
    assert!(ok, "sequential scan sees the array in traditional order");
    println!(
        "sequential visualizer scanned {} elements in pure row-major order — no Panda needed",
        n
    );
}
