#!/usr/bin/env bash
# Repo gate: build, tests, lints, formatting. Run before every commit.
#
# Note: the workspace root is itself a package (panda-examples), so a
# bare `cargo test` would only run the root package's tests — every
# cargo invocation here must say --workspace to cover the crates.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Observability smoke: a real (quick) run under a TimelineRecorder must
# produce a parseable per-phase JSON report. The binary itself
# validates every line it writes (panda_obs::json::validate) and exits
# nonzero otherwise; python double-checks with an independent parser
# when available.
obs_out=$(mktemp /tmp/panda_phases_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin phases -- --quick --out "$obs_out"
if command -v python3 >/dev/null; then
  python3 -c "import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$obs_out"
fi
rm -f "$obs_out"

# Group-concurrency smoke: a quick sequential-vs-batched 4-array run
# must complete (the binary asserts byte-identical files between the
# two modes and validates every JSON line it writes).
group_out=$(mktemp /tmp/panda_group_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin group_timestep -- --quick --out "$group_out"
if command -v python3 >/dev/null; then
  python3 -c "import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$group_out"
fi
rm -f "$group_out"

# Disk-backend smoke: a quick LocalFs-vs-SubmitFs sweep across sync
# policies must complete (the binary asserts every cell lands
# byte-identical files and validates its JSON output).
disk_out=$(mktemp /tmp/panda_disk_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin disk -- --quick --out "$disk_out"
if command -v python3 >/dev/null; then
  python3 -c "import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$disk_out"
fi
rm -f "$disk_out"

# Tenancy smoke: a quick sequential-vs-interleaved multi-session sweep
# must complete (the binary asserts byte-identical files between the
# two scheduling modes per tenant count and validates its JSON output).
tenancy_out=$(mktemp /tmp/panda_tenancy_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin tenancy -- --quick --out "$tenancy_out"
if command -v python3 >/dev/null; then
  python3 -c "import json,sys; [json.loads(l) for l in open(sys.argv[1]) if l.strip()]" "$tenancy_out"
fi
rm -f "$tenancy_out"

# Tuner smoke: calibrate on each backend profile and race the tuned
# operating point against fixed depths. The gate: on MemFs the tuned
# cell must not be more than 5% slower than the best fixed-depth cell
# — the auto-tuner is allowed to tie, never to clearly lose.
tuner_out=$(mktemp /tmp/panda_tuner_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin tuner -- --quick --out "$tuner_out"
if command -v python3 >/dev/null; then
  python3 - "$tuner_out" <<'PY'
import json, sys
cells = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
memfs = [c for c in cells if c["profile"] == "memfs"]
assert memfs, "tuner bench emitted no memfs cells"
tuned = [c for c in memfs if c["mode"] == "tuned"]
fixed = [c for c in memfs if c["mode"].startswith("fixed/")]
assert len(tuned) == 1 and fixed, "memfs profile missing tuned or fixed cells"
best_fixed = min(c["measured_wall_s"] for c in fixed)
wall = tuned[0]["measured_wall_s"]
assert wall <= 1.05 * best_fixed, (
    f"tuned cell {wall:.6f}s is >5% slower than best fixed {best_fixed:.6f}s"
)
print(f"tuner gate: tuned {wall:.6f}s vs best fixed {best_fixed:.6f}s ok")
PY
fi
rm -f "$tuner_out"

# Telemetry-plane smoke: the obs bench runs the MemFs pipeline under
# NullRecorder vs MetricsHub (and friends), throttles a live service
# mid-run, and scrapes /metrics + /healthz from it over TCP. The
# binary itself asserts the drift detector stays quiet on-model and
# fires after the throttle flip; python gates the numbers: hub
# overhead <= 3%, triggered retune recovers >= 80% of a fresh manual
# calibration, and every scraped Prometheus line parses.
obsplane_out=$(mktemp /tmp/panda_obs_ci.XXXXXX.json)
cargo run --release -q -p panda-bench --bin obs -- --quick --out "$obsplane_out"
if command -v python3 >/dev/null; then
  python3 - "$obsplane_out" <<'PY'
import json, re, sys
rows = {c["id"]: c for l in open(sys.argv[1]) if l.strip() for c in [json.loads(l)]}
hub = rows["obs/overhead/hub"]
assert hub["overhead_pct"] <= 3.0, (
    f"MetricsHub overhead {hub['overhead_pct']:.2f}% exceeds the 3% budget"
)
assert rows["obs/drift/baseline"]["drifted"] == 0, "detector fired on-model"
thr = rows["obs/drift/throttled"]
assert thr["drifted"] == 1, "drift detector failed to fire on the throttled backend"
ret = rows["obs/drift/retuned"]
assert ret["recovery_vs_manual"] >= 0.8, (
    f"triggered retune recovered only {ret['recovery_vs_manual']:.2f} of manual"
)
scrape = rows["obs/scrape"]
line_re = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eE]+)$"
)
lines = [l for l in scrape["metrics_text"].splitlines() if l.strip()]
bad = [l for l in lines if not line_re.match(l)]
assert not bad, f"unparseable Prometheus lines: {bad[:3]}"
for family in ("panda_events_total", "panda_health_status", "panda_live_requests"):
    assert any(l.startswith(family) for l in lines), f"missing family {family}"
assert scrape["healthz"]["status"] == "ok", scrape["healthz"]
print(
    f"obs gate: hub overhead {hub['overhead_pct']:.2f}%, drift score "
    f"{thr['drift_score']:.2f}, recovery {ret['recovery_vs_manual']:.2f}, "
    f"{len(lines)} metric lines ok"
)
PY
fi
rm -f "$obsplane_out"

echo "ci: all green"
