#!/usr/bin/env bash
# Repo gate: build, tests, lints, formatting. Run before every commit.
#
# Note: the workspace root is itself a package (panda-examples), so a
# bare `cargo test` would only run the root package's tests — every
# cargo invocation here must say --workspace to cover the crates.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

echo "ci: all green"
