//! Host package for the runnable examples; see `examples/`.
